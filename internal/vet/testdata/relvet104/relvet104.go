// Package relvet104 is the optmisuse corpus.
package relvet104

import (
	"repro/internal/codegen"
	"repro/internal/core"
)

func trigger() (codegen.Options, core.ShardOptions) {
	o := codegen.Options{Ops: nil}    // want relvet104
	s := core.ShardOptions{Shards: 4} // want relvet104
	_ = codegen.Options{}             // want relvet104
	return o, s
}

func nearMiss() (codegen.Options, core.ShardOptions) {
	o := codegen.Options{Package: "gen"}
	s := core.ShardOptions{ShardKey: []string{"a"}, Shards: 4}
	// The zero value via var is explicit enough; only literals are linted.
	var zero core.ShardOptions
	_ = zero
	return o, s
}
