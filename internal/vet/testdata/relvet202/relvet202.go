// Package relvet202 is the lockfreeread corpus: locks and engine-state
// writes reachable from role=read snapshot entry points.
package relvet202

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/relation"
)

// cell mirrors the engine's writer cell: a writer mutex beside the
// published pointer.
type cell struct {
	wmu  sync.Mutex
	cur  atomic.Pointer[core.Relation]
	hits int
}

//relvet:role=publish
func install(c *cell, r *core.Relation) { c.cur.Store(r) }

//relvet:role=read
func queryLocked(c *cell, pat relation.Tuple) ([]relation.Tuple, error) {
	c.wmu.Lock() // want relvet202
	defer c.wmu.Unlock()
	return c.cur.Load().Query(pat, nil)
}

//relvet:role=read
func lenVia(c *cell) int { return lockedLen(c) }

func lockedLen(c *cell) int {
	c.wmu.Lock() // want relvet202
	defer c.wmu.Unlock()
	return c.cur.Load().Len()
}

//relvet:role=read
func countingQuery(c *cell, pat relation.Tuple) ([]relation.Tuple, error) {
	record(c)
	return c.cur.Load().Query(pat, nil)
}

func record(c *cell) {
	c.hits++ // want relvet202
}

var auxMu sync.Mutex

//relvet:role=read
func lenAux(c *cell) int {
	auxMu.Lock() // want relvet202
	auxMu.Unlock()
	return c.cur.Load().Len()
}

// badFill holds the cachefill role, but cell mutexes are never exempt:
// blocking on the writer lock is exactly what snapshot reads must not do.
//
//relvet:role=cachefill
func badFill(c *cell) {
	c.wmu.Lock() // want relvet202
	defer c.wmu.Unlock()
}

//relvet:role=read
func lenBadFill(c *cell) int {
	badFill(c)
	return c.cur.Load().Len()
}

var memoMu sync.Mutex
var memo = map[string]int{}

// fill takes its own memoization lock, the sanctioned cachefill shape
// (the engine's plan-cache fill path).
//
//relvet:role=cachefill
func fill(k string) int {
	memoMu.Lock()
	defer memoMu.Unlock()
	memo[k]++
	return memo[k]
}

//relvet:role=read
func lenMemo(c *cell) int {
	_ = fill("k")
	return c.cur.Load().Len()
}

// mutate locks the writer mutex off the read closure — the writers'
// side of the protocol, not a finding.
func mutate(c *cell, r *core.Relation) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	install(c, r)
}

//relvet:role=read
func lenPure(c *cell) int { return c.cur.Load().Len() }
