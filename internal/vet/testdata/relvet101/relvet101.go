// Package relvet101 is the uncheckedmut corpus: each `// want` line must
// be flagged, every other line must stay clean.
package relvet101

import (
	"repro/internal/core"
	"repro/internal/relation"
)

func trigger(r *core.Relation, sr *core.ShardedRelation, t relation.Tuple) {
	r.Insert(t)                         // want relvet101
	go r.Insert(t)                      // want relvet101
	defer r.Remove(t)                   // want relvet101
	sr.InsertBatch([]relation.Tuple{t}) // want relvet101
}

func nearMiss(r *core.Relation, t relation.Tuple) error {
	if err := r.Insert(t); err != nil {
		return err
	}
	n, err := r.Remove(t)
	_ = n
	// Non-mutating calls may discard results freely.
	r.Len()
	r.Poisoned()
	return err
}

// The batch API carries the same error-return contract as the per-tuple
// mutations: InsertBatch is atomic across the whole slice and its error
// reports FD violations and rollback poisoning for the entire batch, so
// discarding it hides every tuple's outcome at once.
func batchTrigger(sr *core.ShardedRelation, ts []relation.Tuple) {
	go sr.InsertBatch(ts)    // want relvet101
	defer sr.RemoveBatch(ts) // want relvet101
	sr.RemoveBatch(ts)       // want relvet101
}

func batchNearMiss(sr *core.ShardedRelation, ts []relation.Tuple) error {
	if err := sr.InsertBatch(ts); err != nil {
		return err
	}
	removed, err := sr.RemoveBatch(ts)
	_ = removed
	return err
}
