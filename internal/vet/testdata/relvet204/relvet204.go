// Package relvet204 is the atomicpublish corpus: the published
// atomic.Pointer is stored only at publish points and never copied or
// dereferenced as a plain value.
package relvet204

import (
	"sync/atomic"

	"repro/internal/core"
)

type holder struct {
	cur atomic.Pointer[core.Relation]
}

//relvet:role=publish
func publish(h *holder, r *core.Relation) { h.cur.Store(r) }

//relvet:role=publish
func installAt(p *atomic.Pointer[core.Relation], r *core.Relation) { p.Store(r) }

func triggerStore(h *holder, r *core.Relation) {
	h.cur.Store(r) // want relvet204
}

func triggerSwap(h *holder, r *core.Relation) *core.Relation {
	return h.cur.Swap(r) // want relvet204
}

func triggerCopy(h *holder) *core.Relation {
	cur := h.cur // want relvet204
	return cur.Load()
}

func triggerDeref(p *atomic.Pointer[core.Relation]) *core.Relation {
	snap := *p // want relvet204
	return snap.Load()
}

func nearMissLoad(h *holder) *core.Relation { return h.cur.Load() }

func nearMissAddr(h *holder) *atomic.Pointer[core.Relation] { return &h.cur }

// nearMissHandle passes the cell by address to an annotated publish
// point — the engine's per-shard cell-method shape.
func nearMissHandle(h *holder, r *core.Relation) {
	installAt(&h.cur, r)
}
