// Package relvet201 is the cowwrite corpus: stores into published
// relation versions outside the sanctioned fork/clone/config roles.
package relvet201

import (
	"sync/atomic"

	"repro/internal/core"
)

// box is a minimal publication cell in the engine's shape.
type box struct {
	cur atomic.Pointer[core.Relation]
}

//relvet:role=publish
func install(b *box, r *core.Relation) { b.cur.Store(r) }

// view hands out the published version; callers may read it only.
func view(b *box) *core.Relation { return b.cur.Load() }

// relOf is a second-level accessor; publishedness flows through it.
func relOf(b *box) *core.Relation { return view(b) }

// ref returns its argument; publishedness flows through the alias.
func ref(r *core.Relation) *core.Relation { return r }

// fork starts a new version as a value copy of the published one, the
// engine's beginVersion shape.
//
//relvet:role=fork
func fork(b *box) *core.Relation {
	c := *b.cur.Load()
	return &c
}

// configure is the pre-share configuration escape hatch (the engine's
// SetMetrics/SetTracer contract).
//
//relvet:role=config
func configure(r *core.Relation) { r.CheckFDs = true }

// poke mutates its argument; passing published state here is the bug.
func poke(r *core.Relation) { r.CheckFDs = false }

// bump mutates transitively, through poke.
func bump(r *core.Relation) { poke(r) }

func trigger(b *box) {
	b.cur.Load().CheckFDs = true // want relvet201
}

func triggerVar(b *box) {
	r := b.cur.Load()
	r.Vectorize = true // want relvet201
}

func triggerInterproc(b *box) {
	poke(view(b)) // want relvet201
}

func triggerChain(b *box) {
	r := view(b)
	bump(r) // want relvet201
}

func triggerTwoLevel(b *box) {
	relOf(b).CachePlans = true // want relvet201
}

func triggerAlias(b *box) {
	ref(view(b)).CompilePrograms = true // want relvet201
}

func nearMissFork(b *box) {
	f := fork(b) // a fork-role result is unpublished until installed
	f.CheckFDs = true
	install(b, f)
}

func nearMissConfig(b *box) {
	configure(b.cur.Load()) // config role: the pre-share contract
}

func nearMissLocal() {
	var r core.Relation
	r.CheckFDs = true // a fresh local value was never published
}

func nearMissRead(b *box) int {
	return view(b).Len() // reading published state is the point of MVCC
}
