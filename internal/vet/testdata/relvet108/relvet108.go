// Package relvet108 is the unclosedfollower corpus.
package relvet108

import (
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/repl"
)

func trigger(spec *core.Spec, dial repl.Dialer) error {
	f, err := repl.NewFollower(spec, dial, repl.FollowerOptions{}) // want relvet108
	if err != nil {
		return err
	}
	return f.WaitFor(1, 0)
}

func triggerQueryOnly(spec *core.Spec, dial repl.Dialer, pat relation.Tuple) ([]relation.Tuple, error) {
	// Unlike relvet107's durable handles, a read-only follower still
	// leaks: its session goroutine dials and applies until Close.
	f, err := repl.NewFollower(spec, dial, repl.FollowerOptions{}) // want relvet108
	if err != nil {
		return nil, err
	}
	return f.Query(pat, nil)
}

func triggerMetricsOnly(spec *core.Spec, dial repl.Dialer) uint64 {
	// Only observed, never closed — the goroutine still runs.
	f, _ := repl.NewFollower(spec, dial, repl.FollowerOptions{}) // want relvet108
	return f.Lag()
}

func nearMissDeferredClose(spec *core.Spec, dial repl.Dialer, pat relation.Tuple) ([]relation.Tuple, error) {
	f, err := repl.NewFollower(spec, dial, repl.FollowerOptions{})
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			panic(cerr)
		}
	}()
	return f.Query(pat, nil)
}

func nearMissDirectClose(spec *core.Spec, dial repl.Dialer) error {
	f, err := repl.NewFollower(spec, dial, repl.FollowerOptions{})
	if err != nil {
		return err
	}
	if werr := f.WaitFor(1, 0); werr != nil {
		return werr
	}
	return f.Close()
}

func nearMissEscapesReturn(spec *core.Spec, dial repl.Dialer) (*repl.Follower, error) {
	// The caller receives the handle and owns its lifecycle.
	return repl.NewFollower(spec, dial, repl.FollowerOptions{})
}

func nearMissEscapesArg(spec *core.Spec, dial repl.Dialer, hand func(*repl.Follower)) error {
	f, err := repl.NewFollower(spec, dial, repl.FollowerOptions{})
	if err != nil {
		return err
	}
	hand(f)
	return nil
}

func nearMissParameter(f *repl.Follower, pat relation.Tuple) ([]relation.Tuple, error) {
	// Not created here: whoever created it closes it.
	return f.Query(pat, nil)
}
