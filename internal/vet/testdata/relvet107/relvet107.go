// Package relvet107 is the unsynceddurable corpus.
package relvet107

import (
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/durable"
	"repro/internal/relation"
	"repro/internal/wal"
)

func trigger(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) error {
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true, Policy: wal.SyncInterval}) // want relvet107
	if err != nil {
		return err
	}
	return d.Insert(tup)
}

func triggerWrapped(s *core.SyncRelation, l *wal.Log, a, b relation.Tuple) error {
	d := core.NewDurableSync(s, l) // want relvet107
	if err := d.Insert(a); err != nil {
		return err
	}
	_, err := d.Remove(b)
	return err
}

func triggerBatch(dir string, spec *core.Spec, dc *decomp.Decomp, ts []relation.Tuple) error {
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true}) // want relvet107
	if err != nil {
		return err
	}
	return d.InsertBatch(ts)
}

func nearMissDeferredClose(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) error {
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := d.Close(); cerr != nil {
			panic(cerr)
		}
	}()
	return d.Insert(tup)
}

func nearMissSync(s *core.SyncRelation, l *wal.Log, tup relation.Tuple) error {
	d := core.NewDurableSync(s, l)
	if err := d.Insert(tup); err != nil {
		return err
	}
	return d.Sync()
}

func nearMissCheckpoint(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) error {
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true})
	if err != nil {
		return err
	}
	if ierr := d.Insert(tup); ierr != nil {
		return ierr
	}
	return d.Checkpoint()
}

// settle drains buffered appends to disk on behalf of its caller.
func settle(d *core.DurableRelation) error { return d.Checkpoint() }

func nearMissCheckpointHelper(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) error {
	// The durability call is hidden behind a helper: passing the handle
	// to settle ends the intraprocedural flow (the handle escapes), so
	// the analyzer deliberately trusts the callee.
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true})
	if err != nil {
		return err
	}
	if ierr := d.Insert(tup); ierr != nil {
		return ierr
	}
	return settle(d)
}

func nearMissEscapesReturn(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) (*core.DurableRelation, error) {
	// The caller receives the handle and owns its lifecycle.
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true})
	if err != nil {
		return nil, err
	}
	if ierr := d.Insert(tup); ierr != nil {
		return nil, ierr
	}
	return d, nil
}

func nearMissEscapesArg(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple, hand func(*core.DurableRelation)) error {
	d, err := durable.Open(dir, spec, dc, durable.Options{Create: true})
	if err != nil {
		return err
	}
	if ierr := d.Insert(tup); ierr != nil {
		return ierr
	}
	hand(d)
	return nil
}

func nearMissParameter(d *core.DurableRelation, tup relation.Tuple) error {
	// Not opened here: whoever opened it closes it.
	return d.Insert(tup)
}

func nearMissQueryOnly(dir string, spec *core.Spec, dc *decomp.Decomp, tup relation.Tuple) (int, error) {
	// Read-only use buffers nothing; abandoning the handle loses no data.
	d, err := durable.Open(dir, spec, dc, durable.Options{})
	if err != nil {
		return 0, err
	}
	ts, qerr := d.Query(tup, nil)
	return len(ts), qerr
}
