// Package relvet203 is the walorder corpus: wal.Append must dominate
// the publish, and append-error paths may only drop the fork.
package relvet203

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/wal"
)

//relvet:role=fork
func fork(cur *atomic.Pointer[core.Relation]) *core.Relation {
	c := *cur.Load()
	return &c
}

// publish mirrors the engine's publishCell: install only a changed,
// error-free fork; otherwise drop it.
//
//relvet:role=publish
func publish(cur *atomic.Pointer[core.Relation], next *core.Relation, changed bool, err error) error {
	if changed && err == nil {
		cur.Store(next)
	}
	return err
}

func triggerHoisted(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	if err := publish(cur, next, true, nil); err != nil { // want relvet203
		return err
	}
	if werr := log.Append(rec); werr != nil {
		return werr
	}
	return nil
}

func triggerErrorPublish(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	if werr := log.Append(rec); werr != nil {
		return publish(cur, next, true, werr) // want relvet203
	}
	return publish(cur, next, true, nil)
}

func triggerErrorStore(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	if werr := log.Append(rec); werr != nil {
		cur.Store(next) // want relvet203
		return werr
	}
	return publish(cur, next, true, nil)
}

func triggerDiscard(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	_ = log.Append(rec) // want relvet203
	return publish(cur, next, true, nil)
}

// nearMissEngineShape is the exact durable-tier cell shape: append, and
// on failure publish with changed=false — the sanctioned drop.
func nearMissEngineShape(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	if werr := log.Append(rec); werr != nil {
		return publish(cur, next, false, werr)
	}
	return publish(cur, next, true, nil)
}

// nearMissSplitAssign binds the append error a statement earlier; the
// ordering contract is the same.
func nearMissSplitAssign(cur *atomic.Pointer[core.Relation], log *wal.Log, rec wal.Commit) error {
	next := fork(cur)
	werr := log.Append(rec)
	if werr != nil {
		return publish(cur, next, false, werr)
	}
	return publish(cur, next, true, nil)
}

// nearMissReplay publishes without any append: the recovery path, where
// the record is already durable in the log being replayed.
func nearMissReplay(cur *atomic.Pointer[core.Relation]) error {
	next := fork(cur)
	return publish(cur, next, true, nil)
}
