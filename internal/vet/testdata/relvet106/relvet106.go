// Package relvet106 is the stalesnapshot corpus.
package relvet106

import (
	"repro/internal/core"
	"repro/internal/relation"
)

func trigger(s *core.SyncRelation, tup relation.Tuple) (int, error) {
	snap := s.Snapshot()
	if err := s.Insert(tup); err != nil {
		return 0, err
	}
	return snap.Len(), nil // want relvet106
}

func triggerShard(sr *core.ShardedRelation, tup relation.Tuple) ([]relation.Tuple, error) {
	sh := sr.Shard(0)
	if _, err := sr.Remove(tup); err != nil {
		return nil, err
	}
	return sh.Query(tup, nil) // want relvet106
}

func nearMissUseBefore(s *core.SyncRelation, tup relation.Tuple) (int, error) {
	snap := s.Snapshot()
	n := snap.Len()
	if err := s.Insert(tup); err != nil {
		return 0, err
	}
	return n, nil
}

func nearMissRepin(s *core.SyncRelation, tup relation.Tuple) (int, error) {
	snap := s.Snapshot()
	if err := s.Insert(tup); err != nil {
		return 0, err
	}
	snap = s.Snapshot()
	return snap.Len(), nil
}

func nearMissOtherRelation(s, other *core.SyncRelation, tup relation.Tuple) (int, error) {
	snap := s.Snapshot()
	if err := other.Insert(tup); err != nil {
		return 0, err
	}
	return snap.Len(), nil
}

func nearMissGoroutine(s *core.SyncRelation, tup relation.Tuple, out chan<- int) error {
	// The pinned handle escapes into a goroutine before the mutation;
	// whether its reads interleave with the Insert is a scheduling
	// question the position-ordered analyzer cannot decide, so handing
	// the handle off deliberately ends its flow-tracking.
	snap := s.Snapshot()
	go func() {
		out <- snap.Len()
	}()
	return s.Insert(tup)
}

func nearMissConsistentReads(s *core.SyncRelation, a, b relation.Tuple) (int, error) {
	// Pinning one version for several queries is the intended use of the
	// handle; without an interleaved mutation there is nothing to miss.
	snap := s.Snapshot()
	ra, err := snap.Query(a, nil)
	if err != nil {
		return 0, err
	}
	rb, err := snap.Query(b, nil)
	if err != nil {
		return 0, err
	}
	return len(ra) + len(rb), nil
}
