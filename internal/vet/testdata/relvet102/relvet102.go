// Package relvet102 is the swallowedpoison corpus.
package relvet102

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

func trigger(err error) {
	if errors.Is(err, core.ErrPoisoned) { // want relvet102
	}
	var pe *core.PanicError
	if errors.As(err, &pe) { // want relvet102
	}
	if err == core.ErrPoisoned { // want relvet102
	}
}

func nearMiss(err error) error {
	if errors.Is(err, core.ErrPoisoned) {
		return fmt.Errorf("relation torn: %w", err)
	}
	var pe *core.PanicError
	if errors.As(err, &pe) {
		panic(pe)
	}
	// Empty branches on ordinary errors are not the lint's business.
	if errors.Is(err, errOther) {
	}
	return nil
}

var errOther = errors.New("other")
