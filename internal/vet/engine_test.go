package vet_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/vet"
)

// TestEngineCorpus drives each 2xx analyzer over its fixture package:
// triggers must fire on the `// want relvet2NN` lines, near-misses must
// stay silent. `make ci-race` re-runs this gate under -race.
func TestEngineCorpus(t *testing.T) {
	cases := []struct {
		dir string
		an  *analysis.Analyzer
	}{
		{"relvet200", vet.RoleAnnotation},
		{"relvet201", vet.CowWrite},
		{"relvet202", vet.LockFreeRead},
		{"relvet203", vet.WalOrder},
		{"relvet204", vet.AtomicPublish},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			runCorpus(t, c.dir, c.an)
		})
	}
}

// TestEngineCatalogue checks the 2xx catalogue is complete and agrees
// with the analyzers.
func TestEngineCatalogue(t *testing.T) {
	infos := vet.EngineCodes()
	if len(infos) != 5 {
		t.Fatalf("engine catalogue has %d codes, want 5 (relvet200–204)", len(infos))
	}
	sev := map[diag.Code]diag.Severity{}
	for _, i := range infos {
		if i.Summary == "" || i.Grounding == "" {
			t.Errorf("code %s lacks summary or grounding", i.Code)
		}
		sev[i.Code] = i.Severity
	}
	for _, a := range vet.EngineAnalyzers() {
		s, ok := sev[a.Code]
		if !ok {
			t.Errorf("analyzer %s has uncatalogued code %s", a.Name, a.Code)
		} else if s != a.Severity {
			t.Errorf("analyzer %s severity %v != catalogue %v", a.Name, a.Severity, s)
		}
	}
}

// TestEngineCleanOnModule runs the full 2xx plane over the engine
// packages — the same gate as `make lint-engine` — and requires zero
// findings. Any true positive must be fixed or carry a documented
// //relvet:role exemption, never an ignore.
func TestEngineCleanOnModule(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, vet.EnginePackages()...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(vet.EnginePackages()) {
		t.Fatalf("loaded %d packages, want %d", len(pkgs), len(vet.EnginePackages()))
	}
	for _, d := range analysis.Run(pkgs, vet.EngineAnalyzers()) {
		t.Errorf("%s:%d:%d: %s %s", d.Pos.File, d.Pos.Line, d.Pos.Col, d.Code, d.Message)
	}
}

// TestNoStandingSuppressions asserts the module carries zero
// //relvet:ignore markers outside testdata — the Makefile's
// "analyzer-clean, no standing suppressions" claim, enforced. The
// marker exists for client code; the engine and its tools must instead
// fix findings or annotate a sanctioned role.
func TestNoStandingSuppressions(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git", "bin":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//relvet:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				t.Errorf("%s:%d: standing //relvet:ignore suppression in non-testdata source", pos.Filename, pos.Line)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
