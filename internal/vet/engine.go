package vet

// The relvet 2xx plane: engine-invariant analyzers that check the
// engine's own source (internal/core, internal/instance,
// internal/dstruct, internal/durable, internal/wal) rather than client
// code. Where the 1xx analyzers are intraprocedural pattern checks,
// these lean on the interprocedural layer in internal/analysis —
// per-function summaries, a call graph, and the //relvet:role
// annotation contract (see internal/analysis/interproc.go for the
// vocabulary) — to state the MVCC and durability invariants of PR 7/8
// statically:
//
//	relvet200  the role-annotation contract itself (unknown or
//	           misplaced //relvet:role markers)
//	relvet201  published versions are immutable outside fork/clone/
//	           config roles (COW write discipline)
//	relvet202  nothing reachable from a role=read entry point may
//	           lock or write engine state (lock-free read purity)
//	relvet203  wal.Append dominates the publish on durable mutation
//	           paths; error paths must not publish
//	relvet204  the published atomic.Pointer is stored only at
//	           role=publish points and never copied non-atomically
//
// The dynamic twins of 201/202 are the ExhaustCOW harness and
// mvcc_lockfree_test.go; of 203, the ExhaustWAL kill-point harness.
// The analyzers are the static half: they fail `make lint-engine`
// before a bad refactor ever reaches those suites.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/lint"
)

// Engine-invariant plane codes.
const (
	CodeRoleAnnotation diag.Code = "relvet200"
	CodeCowWrite       diag.Code = "relvet201"
	CodeLockFreeRead   diag.Code = "relvet202"
	CodeWalOrder       diag.Code = "relvet203"
	CodeAtomicPublish  diag.Code = "relvet204"
)

// EnginePackages is the closed scope the 2xx plane audits: the packages
// that own published versions, COW structures, and the durability path.
func EnginePackages() []string {
	return []string{
		"./internal/core",
		"./internal/instance",
		"./internal/dstruct",
		"./internal/durable",
		"./internal/wal",
	}
}

// EngineCodes returns the 2xx catalogue entries.
func EngineCodes() []lint.Info {
	return []lint.Info{
		{Code: CodeRoleAnnotation, Severity: diag.Error,
			Summary:   "unknown, duplicate, or misplaced //relvet:role annotation",
			Grounding: "the 2xx analyzers trust role annotations to name the sanctioned fork/clone/publish/config/read/cachefill functions; a typo would silently widen or narrow an invariant"},
		{Code: CodeCowWrite, Severity: diag.Error,
			Summary:   "field store into a published relation version outside a fork/clone/config role",
			Grounding: "the MVCC contract (PR 7): published versions are immutable; writers mutate only unpublished COW forks (beginVersion/cowSpine/dstruct clones), so a store through a published pointer races every lock-free reader"},
		{Code: CodeLockFreeRead, Severity: diag.Error,
			Summary:   "snapshot read path acquires a mutex or writes engine state",
			Grounding: "the lock-free read contract (static twin of mvcc_lockfree_test.go): Query/QueryFunc/QueryRange/Len/ExplainQuery load a published version and must complete even with every writer mutex held by someone else; only role=cachefill may take a non-cell lock"},
		{Code: CodeWalOrder, Severity: diag.Error,
			Summary:   "publish not dominated by wal.Append, publish on the append-error path, or discarded append error",
			Grounding: "the WAL-before-publish rule (PR 8): a version may reach readers only after its delta is durable to policy; a hoisted or error-path publish lets a crash lose acknowledged state"},
		{Code: CodeAtomicPublish, Severity: diag.Error,
			Summary:   "published atomic.Pointer stored outside a publish point or copied non-atomically",
			Grounding: "every publish is one atomic store at a role=publish function; copying the pointer cell by value (or storing elsewhere) breaks the single-writer/atomic-reader protocol the MVCC tier rests on"},
	}
}

// EngineAnalyzers returns the 2xx analyzers in code order.
func EngineAnalyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{RoleAnnotation, CowWrite, LockFreeRead, WalOrder, AtomicPublish}
}

// ---- relvet200: the annotation contract ----

// RoleAnnotation audits every //relvet:role marker: the role must be in
// the closed vocabulary, attached to exactly one function declaration's
// doc comment, and not repeated.
var RoleAnnotation = &analysis.Analyzer{
	Name:     "roleannotation",
	Doc:      "unknown, duplicate, or misplaced //relvet:role annotations",
	Code:     CodeRoleAnnotation,
	Severity: diag.Error,
	Run:      runRoleAnnotation,
}

func runRoleAnnotation(pass *analysis.Pass) {
	for _, m := range pass.Prog.Marks {
		if m.Pkg != pass.Pkg {
			continue
		}
		if analysis.ValidRoles[m.Role] == "" {
			pass.Reportf(m.Pos, "unknown //relvet:role %q (valid roles: %s)", m.Role, roleList())
			continue
		}
		if m.Fn == nil {
			pass.Reportf(m.Pos, "//relvet:role=%s is not attached to a function declaration's doc comment; the annotation designates functions only", m.Role)
			continue
		}
		if m.Dup {
			pass.Reportf(m.Pos, "duplicate //relvet:role on %s (already %s); a function carries exactly one role", m.Fn.Name, m.Fn.Role)
		}
	}
}

func roleList() string {
	names := make([]string, 0, len(analysis.ValidRoles))
	for r := range analysis.ValidRoles {
		names = append(names, r)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ---- relvet201: COW write discipline ----

// CowWrite flags stores into published engine state: any field/element
// store whose base was loaded from the published atomic pointer (or
// returned by a function summarized as returning published state), and
// any call passing published state to a parameter the callee mutates —
// unless the callee holds the fork, clone, or config role.
var CowWrite = &analysis.Analyzer{
	Name:     "cowwrite",
	Doc:      "field stores into published (immutable) relation versions",
	Code:     CodeCowWrite,
	Severity: diag.Error,
	Run:      runCowWrite,
}

func runCowWrite(pass *analysis.Pass) {
	prog := pass.Prog
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		if analysis.RoleExemptsMutation(fn.Role) {
			continue // fork/clone/config/cachefill bodies are the sanctioned mutators
		}
		eval := prog.Eval(fn)
		pubBase := func(e ast.Expr) bool {
			_, pub := eval(e)
			return pub
		}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if base, ok := storeBase(lhs); ok && pubBase(base) {
						pass.Reportf(lhs.Pos(), "store into a published relation version: published state is immutable outside //relvet:role=fork/clone (mutate an unpublished beginVersion fork instead)")
					}
				}
			case *ast.IncDecStmt:
				if base, ok := storeBase(n.X); ok && pubBase(base) {
					pass.Reportf(n.X.Pos(), "store into a published relation version: published state is immutable outside //relvet:role=fork/clone (mutate an unpublished beginVersion fork instead)")
				}
			case *ast.CallExpr:
				ci, args := prog.ResolveCall(pass.Pkg, n)
				if ci == nil {
					return true
				}
				if analysis.RoleExemptsMutation(ci.Role) {
					return true
				}
				for j, a := range args {
					if a == nil || j >= len(ci.MutatesParam) || !ci.MutatesParam[j] {
						continue
					}
					if !analysis.Pointerish(pass.Pkg.Info.TypeOf(a)) {
						continue
					}
					if pubBase(a) {
						pass.Reportf(n.Pos(), "passes a published relation version to %s, which mutates it: published state is immutable outside //relvet:role=fork/clone/config", ci.Name)
						break
					}
				}
			}
			return true
		})
	}
}

// storeBase returns the base expression of a reference-chain store
// target (x in x.f, x[i], *x); plain identifier assignments rebind and
// are not stores.
func storeBase(lhs ast.Expr) (ast.Expr, bool) {
	switch lhs := lhs.(type) {
	case *ast.ParenExpr:
		return storeBase(lhs.X)
	case *ast.SelectorExpr:
		return lhs.X, true
	case *ast.IndexExpr:
		return lhs.X, true
	case *ast.StarExpr:
		return lhs.X, true
	}
	return nil, false
}

// ---- relvet202: lock-free read purity ----

// LockFreeRead walks the call graph from every role=read entry point
// and flags, anywhere in the closure: a mutex acquisition (cell-struct
// mutexes unconditionally; others unless the acquiring function holds
// role=cachefill) and any store into engine-state-typed parameters —
// the static twin of holding all writer locks while running every read.
var LockFreeRead = &analysis.Analyzer{
	Name:     "lockfreeread",
	Doc:      "locks or engine-state writes reachable from snapshot read entry points",
	Code:     CodeLockFreeRead,
	Severity: diag.Error,
	Run:      runLockFreeRead,
}

func runLockFreeRead(pass *analysis.Pass) {
	prog := pass.Prog
	reported := map[token.Pos]bool{}
	for _, root := range prog.FuncsOf(pass.Pkg) {
		if root.Role != analysis.RoleRead {
			continue
		}
		order, parent := prog.Reach(root.Key)
		for _, key := range order {
			fi := prog.Funcs[key]
			if fi == nil {
				continue
			}
			for _, lk := range fi.Locks {
				if !lk.Cell && fi.Role == analysis.RoleCacheFill {
					continue
				}
				if reported[lk.Pos] {
					continue
				}
				reported[lk.Pos] = true
				kind := "mutex"
				if lk.Cell {
					kind = "writer (cell) mutex"
				}
				pass.Reportf(lk.Pos, "%s %s acquired on the lock-free read path %s: snapshot reads must complete even when writers hold every lock (annotate //relvet:role=cachefill only for non-cell memoization locks)", kind, lk.Desc, prog.PathTo(parent, key))
			}
			for _, st := range fi.Stores {
				if !prog.IsEngineState(st.Root) {
					continue
				}
				if reported[st.Pos] {
					continue
				}
				reported[st.Pos] = true
				pass.Reportf(st.Pos, "engine state (%s) written on the lock-free read path %s: reads must not mutate shared engine structures", st.Root.String(), prog.PathTo(parent, key))
			}
		}
	}
}

// ---- relvet203: WAL-before-publish ordering ----

// WalOrder checks every function that both appends to a *wal.Log and
// publishes a version (a call to a role=publish function, or a direct
// atomic store of the published pointer): the first append must precede
// every publish; inside an append-error branch the only legal publish
// is a drop (changed=false to a publish function — the poison-and-drop
// idiom); and the append error must not be discarded.
var WalOrder = &analysis.Analyzer{
	Name:     "walorder",
	Doc:      "wal.Append must dominate the publish; error paths must not publish",
	Code:     CodeWalOrder,
	Severity: diag.Error,
	Run:      runWalOrder,
}

const walLogType = "repro/internal/wal.Log"

func runWalOrder(pass *analysis.Pass) {
	prog := pass.Prog
	info := pass.Pkg.Info
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		var appends []*ast.CallExpr
		type pubEvent struct {
			pos     token.Pos
			direct  bool     // direct atomic Store/Swap/CAS of the published pointer
			changed ast.Expr // the bool "changed" argument of a publish call, if any
			name    string
		}
		var pubs []pubEvent

		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
				if isWalAppend(info, sel) {
					appends = append(appends, call)
					return true
				}
				if isPubStore(info, sel) {
					pubs = append(pubs, pubEvent{pos: call.Pos(), direct: true, name: sel.Sel.Name})
					return true
				}
			}
			if ci, args := prog.ResolveCall(pass.Pkg, call); ci != nil && ci.Role == analysis.RolePublish {
				ev := pubEvent{pos: call.Pos(), name: ci.Name}
				for j := 0; j < ci.NumParams(); j++ {
					if bt, ok := ci.ParamType(j).Underlying().(*types.Basic); ok && bt.Kind() == types.Bool {
						if j < len(args) {
							ev.changed = args[j]
						}
						break
					}
				}
				pubs = append(pubs, ev)
			}
			return true
		})
		if len(appends) == 0 || len(pubs) == 0 {
			continue
		}

		// Rule A: the first append dominates every publish.
		firstAppend := appends[0].Pos()
		for _, a := range appends {
			if a.Pos() < firstAppend {
				firstAppend = a.Pos()
			}
		}
		for _, pv := range pubs {
			if pv.pos >= firstAppend {
				continue
			}
			// A changed=false publish is a drop: it cannot store the fork,
			// so logging order is moot (the pre-append error paths of
			// insertCell use exactly this shape).
			if !pv.direct && isFalseLiteral(pv.changed) {
				continue
			}
			pass.Reportf(pv.pos, "publishes (%s) before the wal.Append: a reader or a crash could observe state the log does not contain (WAL-before-publish, PR 8)", pv.name)
		}

		// Rule B: append-error branches may only drop (changed=false).
		for _, rng := range appendErrorBranches(info, fn.Decl.Body, appends) {
			for _, pv := range pubs {
				if pv.pos < rng.from || pv.pos > rng.to {
					continue
				}
				if pv.direct {
					pass.Reportf(pv.pos, "stores the published pointer on the wal.Append error path: a failed append must drop the fork (publish changed=false), not expose it")
				} else if !isFalseLiteral(pv.changed) {
					pass.Reportf(pv.pos, "publishes with changed!=false on the wal.Append error path: a failed append must drop the fork (publish changed=false), not expose it")
				}
			}
		}

		// Rule C: the append error feeds the publish decision; a
		// publishing function may not discard it.
		for _, a := range appends {
			if appendDiscarded(fn.Decl.Body, a) {
				pass.Reportf(a.Pos(), "discards the wal.Append error in a publishing function: the error decides whether the fork may publish")
			}
		}
	}
}

func isWalAppend(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Append" && sel.Sel.Name != "Sync" {
		return false
	}
	t := info.TypeOf(sel.X)
	return t != nil && stripPtrType(t).String() == walLogType
}

func isPubStore(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	return analysis.IsPubPointer(info.TypeOf(sel.X))
}

type posRange struct{ from, to token.Pos }

// appendErrorBranches locates `if err := log.Append(...); err != nil`
// bodies (and the split `err = log.Append(...)` / `if err != nil` form)
// for the given append calls.
func appendErrorBranches(info *types.Info, body *ast.BlockStmt, appends []*ast.CallExpr) []posRange {
	isAppend := func(e ast.Expr) bool {
		for _, a := range appends {
			if unparenExpr(e) == a {
				return true
			}
		}
		return false
	}
	condIdent := func(cond ast.Expr) *ast.Ident {
		be, ok := unparenExpr(cond).(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			return nil
		}
		id, ok := unparenExpr(be.X).(*ast.Ident)
		if !ok {
			return nil
		}
		if nl, ok := unparenExpr(be.Y).(*ast.Ident); !ok || nl.Name != "nil" {
			return nil
		}
		return id
	}
	assignsFromAppend := func(st ast.Stmt) *ast.Ident {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || !isAppend(as.Rhs[0]) {
			return nil
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				return id
			}
		}
		return nil
	}
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		var pending *ast.Ident
		for _, st := range blk.List {
			ifs, ok := st.(*ast.IfStmt)
			if !ok {
				if id := assignsFromAppend(st); id != nil {
					pending = id
				} else {
					pending = nil
				}
				continue
			}
			var bound *ast.Ident
			if ifs.Init != nil {
				bound = assignsFromAppend(ifs.Init)
			} else if pending != nil {
				bound = pending
			}
			pending = nil
			if bound == nil {
				continue
			}
			if ci := condIdent(ifs.Cond); ci != nil && info.ObjectOf(ci) == info.ObjectOf(bound) {
				out = append(out, posRange{ifs.Body.Pos(), ifs.Body.End()})
			}
		}
		return true
	})
	return out
}

// appendDiscarded reports whether the append call's error result is
// thrown away: a bare expression statement or an all-blank assignment.
func appendDiscarded(body *ast.BlockStmt, call *ast.CallExpr) bool {
	discarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if unparenExpr(n.X) == call {
				discarded = true
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && unparenExpr(n.Rhs[0]) == call {
				all := true
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						all = false
					}
				}
				if all {
					discarded = true
				}
			}
		}
		return !discarded
	})
	return discarded
}

func isFalseLiteral(e ast.Expr) bool {
	if e == nil {
		return false
	}
	id, ok := unparenExpr(e).(*ast.Ident)
	return ok && id.Name == "false"
}

// ---- relvet204: atomic publish protocol ----

// AtomicPublish restricts use of the published atomic.Pointer cell:
// Store/Swap/CompareAndSwap only inside role=publish functions, and the
// cell value itself may appear only as the receiver of an atomic method
// call or under & (passing its address) — never copied or dereferenced
// as a plain value.
var AtomicPublish = &analysis.Analyzer{
	Name:     "atomicpublish",
	Doc:      "published atomic.Pointer stored outside publish points or used non-atomically",
	Code:     CodeAtomicPublish,
	Severity: diag.Error,
	Run:      runAtomicPublish,
}

func runAtomicPublish(pass *analysis.Pass) {
	prog := pass.Prog
	info := pass.Pkg.Info
	for _, fn := range prog.FuncsOf(pass.Pkg) {
		// allowed marks pointer-cell expressions in sanctioned
		// positions: atomic method receivers and address-of operands.
		allowed := map[ast.Expr]bool{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := unparenExpr(n.Fun).(*ast.SelectorExpr); ok {
					if analysis.IsPubPointer(info.TypeOf(sel.X)) {
						switch sel.Sel.Name {
						case "Load":
							allowed[unparenExpr(sel.X)] = true
						case "Store", "Swap", "CompareAndSwap":
							allowed[unparenExpr(sel.X)] = true
							if fn.Role != analysis.RolePublish {
								pass.Reportf(n.Pos(), "%s on the published pointer outside a //relvet:role=publish function: every publish is one atomic store at an annotated publish point", sel.Sel.Name)
							}
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && analysis.IsPubPointer(info.TypeOf(n.X)) {
					allowed[unparenExpr(n.X)] = true
				}
			}
			return true
		})
		// skip holds selector Sel identifiers: the field name of x.cur
		// types as the cell, but the use is judged at the selector node.
		skip := map[*ast.Ident]bool{}
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				skip[sel.Sel] = true
			}
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if id, ok := e.(*ast.Ident); ok && skip[id] {
				return true
			}
			t := info.TypeOf(e)
			if t == nil {
				return true
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				return true // *atomic.Pointer handles are fine to pass around
			}
			if !analysis.IsPubPointer(t) {
				return true
			}
			if allowed[unparenExpr(e)] {
				return false // sanctioned position; the subtree is its spelling
			}
			switch e.(type) {
			case *ast.ParenExpr:
				return true
			}
			pass.Reportf(e.Pos(), "published atomic.Pointer used as a plain value: the cell may only be Loaded, Stored at a publish point, or passed by address (copying it forks the publication protocol)")
			return false
		})
	}
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func stripPtrType(t types.Type) types.Type {
	for {
		pt, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = pt.Elem()
	}
}
