package vet_test

import (
	"regexp"
	"testing"

	"repro/internal/analysis"
	"repro/internal/diag"
	"repro/internal/vet"
)

var wantRe = regexp.MustCompile(`// want (relvet\d+)`)

// TestAnalyzersOnCorpus loads each fixture package and checks the
// analyzer flags exactly the lines annotated `// want relvetNNN` —
// triggers must fire, near-misses must stay silent.
func TestAnalyzersOnCorpus(t *testing.T) {
	cases := []struct {
		dir string
		an  *analysis.Analyzer
	}{
		{"relvet101", vet.UncheckedMut},
		{"relvet102", vet.SwallowedPoison},
		{"relvet103", vet.StaleResults},
		{"relvet104", vet.OptionsMisuse},
		{"relvet106", vet.StaleSnapshot},
		{"relvet107", vet.UnsyncedDurable},
		{"relvet108", vet.UnclosedFollower},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			runCorpus(t, c.dir, c.an)
		})
	}
}

// runCorpus loads one fixture package and checks the analyzer flags
// exactly the `// want relvetNNN` lines; shared by the 1xx and the
// engine-plane (2xx) corpus tests.
func runCorpus(t *testing.T, dir string, an *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(".", "./testdata/"+dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]

	want := map[int]diag.Code{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				m := wantRe.FindStringSubmatch(cm.Text)
				if m == nil {
					continue
				}
				want[pkg.Fset.Position(cm.Pos()).Line] = diag.Code(m[1])
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}

	got := map[int]diag.Code{}
	for _, d := range analysis.Run(pkgs, []*analysis.Analyzer{an}) {
		if prev, dup := got[d.Pos.Line]; dup && prev != d.Code {
			t.Errorf("two codes on line %d", d.Pos.Line)
		}
		got[d.Pos.Line] = d.Code
	}
	for line, code := range want {
		if got[line] != code {
			t.Errorf("line %d: want %s, got %q", line, code, got[line])
		}
	}
	for line, code := range got {
		if _, ok := want[line]; !ok {
			t.Errorf("line %d: unexpected %s finding", line, code)
		}
	}
}

// TestCatalogue checks the Go-plane catalogue is complete and the
// analyzers agree with it.
func TestCatalogue(t *testing.T) {
	infos := vet.Codes()
	if len(infos) != 8 {
		t.Fatalf("catalogue has %d codes, want 8 (relvet101–108)", len(infos))
	}
	sev := map[diag.Code]diag.Severity{}
	for _, i := range infos {
		if i.Summary == "" || i.Grounding == "" {
			t.Errorf("code %s lacks summary or grounding", i.Code)
		}
		sev[i.Code] = i.Severity
	}
	for _, a := range vet.Analyzers() {
		s, ok := sev[a.Code]
		if !ok {
			t.Errorf("analyzer %s has uncatalogued code %s", a.Name, a.Code)
		} else if s != a.Severity {
			t.Errorf("analyzer %s severity %v != catalogue %v", a.Name, a.Severity, s)
		}
	}
}
