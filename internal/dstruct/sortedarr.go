package dstruct

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/value"
)

// SortedArr keeps key/value pairs in a slice sorted by key. Get is O(log n)
// by binary search; Put and Delete are O(n) due to shifting; Range is
// ordered. It is the right structure for small, read-mostly maps where
// pointer-chasing structures waste memory.
type SortedArr[V any] struct {
	keys   []relation.Tuple
	vals   []V
	shared bool // both slices are shared with a Clone; copy before any write
}

// NewSortedArr returns an empty sorted array.
func NewSortedArr[V any]() *SortedArr[V] { return &SortedArr[V]{} }

// Kind returns SortedArrKind.
func (s *SortedArr[V]) Kind() Kind { return SortedArrKind }

// Len returns the number of entries.
func (s *SortedArr[V]) Len() int { return len(s.keys) }

// search returns the insertion index for k and whether k is present there.
func (s *SortedArr[V]) search(k relation.Tuple) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return s.keys[i].Compare(k) >= 0 })
	return i, i < len(s.keys) && s.keys[i].Compare(k) == 0
}

// Get returns the value for k.
func (s *SortedArr[V]) Get(k relation.Tuple) (V, bool) {
	if i, ok := s.search(k); ok {
		return s.vals[i], true
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup: binary search on the
// sole key values, with no key tuple and no allocation.
func (s *SortedArr[V]) GetByValue(v value.Value) (V, bool) {
	i := sort.Search(len(s.keys), func(i int) bool { return value.Compare(s.keys[i].ValueAt(0), v) >= 0 })
	if i < len(s.keys) && value.Compare(s.keys[i].ValueAt(0), v) == 0 {
		return s.vals[i], true
	}
	var zero V
	return zero, false
}

// ownSlices makes the parallel arrays writable, copying both if a Clone
// still shares them (in-place shifts and truncations would otherwise leak
// through the shared backing).
func (s *SortedArr[V]) ownSlices() {
	if s.shared {
		s.keys = append([]relation.Tuple(nil), s.keys...)
		s.vals = append([]V(nil), s.vals...)
		s.shared = false
	}
}

// Put inserts or replaces the value for k.
func (s *SortedArr[V]) Put(k relation.Tuple, v V) {
	i, ok := s.search(k)
	if ok {
		s.ownSlices()
		s.vals[i] = v
		return
	}
	s.ownSlices()
	s.keys = append(s.keys, relation.Tuple{})
	s.vals = append(s.vals, v)
	copy(s.keys[i+1:], s.keys[i:])
	copy(s.vals[i+1:], s.vals[i:])
	s.keys[i] = k
	s.vals[i] = v
}

// Delete removes k.
func (s *SortedArr[V]) Delete(k relation.Tuple) bool {
	i, ok := s.search(k)
	if !ok {
		return false
	}
	s.ownSlices()
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
	return true
}

// Clone returns an independent sorted array sharing both backing arrays
// with the receiver; whichever side writes first copies them.
//
//relvet:role=clone
func (s *SortedArr[V]) Clone() Map[V] {
	s.shared = true
	c := *s
	return &c
}

// Range visits entries in ascending key order. Snapshot semantics: entries
// are visited from a copy of the index, so deleting the visited entry is
// safe.
func (s *SortedArr[V]) Range(f func(k relation.Tuple, v V) bool) {
	keys := make([]relation.Tuple, len(s.keys))
	copy(keys, s.keys)
	for _, k := range keys {
		if v, ok := s.Get(k); ok {
			if !f(k, v) {
				return
			}
		}
	}
}
