package dstruct

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// AVL is a self-balancing binary search tree ordered by column-wise key
// comparison, playing the role of std::map / boost::intrusive::set in the
// paper's library. Get, Put, and Delete are O(log n); Range is an in-order
// traversal, so iteration yields keys in sorted order.
type AVL[V any] struct {
	root *avlNode[V]
	n    int

	// owner is the copy-on-write token. A node is mutable by this tree iff
	// node.owner == t.owner; Clone hands both trees fresh tokens, so every
	// pre-clone node becomes frozen for both sides and is copied on the way
	// down by the first writer that touches it (path copying). Before any
	// Clone both fields are nil, nil == nil, and writes mutate in place at
	// zero extra cost.
	owner *avlOwner
}

type avlOwner struct{ _ byte }

type avlNode[V any] struct {
	key         relation.Tuple
	val         V
	left, right *avlNode[V]
	height      int
	owner       *avlOwner
}

// NewAVL returns an empty AVL tree.
func NewAVL[V any]() *AVL[V] { return &AVL[V]{} }

// Kind returns AVLKind.
func (t *AVL[V]) Kind() Kind { return AVLKind }

// Len returns the number of entries.
func (t *AVL[V]) Len() int { return t.n }

func height[V any](n *avlNode[V]) int {
	if n == nil {
		return 0
	}
	return n.height
}

func fix[V any](n *avlNode[V]) {
	n.height = 1 + max(height(n.left), height(n.right))
}

func balanceOf[V any](n *avlNode[V]) int {
	return height(n.left) - height(n.right)
}

// own returns a node this tree may mutate: n itself when n carries the
// tree's token, a copy stamped with the token otherwise. Copying only on
// the mutation path is what makes Clone O(1) and Put/Delete O(log n)
// worst-case even right after a clone.
func (t *AVL[V]) own(n *avlNode[V]) *avlNode[V] {
	if n == nil || n.owner == t.owner {
		return n
	}
	c := *n
	c.owner = t.owner
	return &c
}

// rotateRight and rotateLeft receive an owned pivot but must also own the
// child they hoist, since both operands are restructured.
func (t *AVL[V]) rotateRight(y *avlNode[V]) *avlNode[V] {
	x := t.own(y.left)
	y.left = x.right
	x.right = y
	fix(y)
	fix(x)
	return x
}

func (t *AVL[V]) rotateLeft(x *avlNode[V]) *avlNode[V] {
	y := t.own(x.right)
	x.right = y.left
	y.left = x
	fix(x)
	fix(y)
	return y
}

func (t *AVL[V]) rebalance(n *avlNode[V]) *avlNode[V] {
	fix(n)
	switch b := balanceOf(n); {
	case b > 1:
		if balanceOf(n.left) < 0 {
			n.left = t.rotateLeft(t.own(n.left))
		}
		return t.rotateRight(n)
	case b < -1:
		if balanceOf(n.right) > 0 {
			n.right = t.rotateRight(t.own(n.right))
		}
		return t.rotateLeft(n)
	}
	return n
}

// Get returns the value for k.
func (t *AVL[V]) Get(k relation.Tuple) (V, bool) {
	n := t.root
	for n != nil {
		switch c := k.Compare(n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup: the descent compares
// the sole key values directly, with no key tuple and no allocation.
func (t *AVL[V]) GetByValue(v value.Value) (V, bool) {
	n := t.root
	for n != nil {
		switch c := value.Compare(v, n.key.ValueAt(0)); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k.
func (t *AVL[V]) Put(k relation.Tuple, v V) {
	var inserted bool
	t.root, inserted = t.put(t.root, k, v)
	if inserted {
		t.n++
	}
}

func (t *AVL[V]) put(n *avlNode[V], k relation.Tuple, v V) (*avlNode[V], bool) {
	if n == nil {
		return &avlNode[V]{key: k, val: v, height: 1, owner: t.owner}, true
	}
	switch c := k.Compare(n.key); {
	case c < 0:
		left, inserted := t.put(n.left, k, v)
		n = t.own(n)
		n.left = left
		return t.rebalance(n), inserted
	case c > 0:
		right, inserted := t.put(n.right, k, v)
		n = t.own(n)
		n.right = right
		return t.rebalance(n), inserted
	default:
		n = t.own(n)
		n.val = v
		return n, false
	}
}

// Delete removes k.
func (t *AVL[V]) Delete(k relation.Tuple) bool {
	var deleted bool
	t.root, deleted = t.del(t.root, k)
	if deleted {
		t.n--
	}
	return deleted
}

func (t *AVL[V]) del(n *avlNode[V], k relation.Tuple) (*avlNode[V], bool) {
	if n == nil {
		return nil, false
	}
	switch c := k.Compare(n.key); {
	case c < 0:
		left, deleted := t.del(n.left, k)
		if !deleted {
			return n, false
		}
		n = t.own(n)
		n.left = left
		return t.rebalance(n), true
	case c > 0:
		right, deleted := t.del(n.right, k)
		if !deleted {
			return n, false
		}
		n = t.own(n)
		n.right = right
		return t.rebalance(n), true
	default:
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			// Replace with in-order successor.
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n = t.own(n)
			n.key, n.val = succ.key, succ.val
			n.right, _ = t.del(n.right, succ.key)
			return t.rebalance(n), true
		}
	}
}

// Range visits entries in ascending key order. The tree must not be mutated
// during iteration.
func (t *AVL[V]) Range(f func(k relation.Tuple, v V) bool) {
	t.inorder(t.root, f)
}

func (t *AVL[V]) inorder(n *avlNode[V], f func(k relation.Tuple, v V) bool) bool {
	if n == nil {
		return true
	}
	if !t.inorder(n.left, f) {
		return false
	}
	if !f(n.key, n.val) {
		return false
	}
	return t.inorder(n.right, f)
}

// Min returns the smallest key and its value, for ordered-extension queries.
func (t *AVL[V]) Min() (relation.Tuple, V, bool) {
	if t.root == nil {
		var zero V
		return relation.Tuple{}, zero, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *AVL[V]) Max() (relation.Tuple, V, bool) {
	if t.root == nil {
		var zero V
		return relation.Tuple{}, zero, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Clone returns an independent tree sharing every node with the receiver.
// Both sides take fresh owner tokens, so each copies its own write paths
// from the shared structure on demand (persistent-tree path copying).
//
//relvet:role=clone
func (t *AVL[V]) Clone() Map[V] {
	t.owner = new(avlOwner)
	c := *t
	c.owner = new(avlOwner)
	return &c
}

// checkInvariant verifies AVL balance and BST ordering; used by tests.
func (t *AVL[V]) checkInvariant() bool {
	ok := true
	var walk func(n *avlNode[V]) int
	walk = func(n *avlNode[V]) int {
		if n == nil {
			return 0
		}
		lh, rh := walk(n.left), walk(n.right)
		if n.height != 1+max(lh, rh) || lh-rh > 1 || lh-rh < -1 {
			ok = false
		}
		if n.left != nil && n.left.key.Compare(n.key) >= 0 {
			ok = false
		}
		if n.right != nil && n.right.key.Compare(n.key) <= 0 {
			ok = false
		}
		return n.height
	}
	walk(t.root)
	return ok
}
