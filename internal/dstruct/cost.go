package dstruct

import "math"

// The per-structure cost model m_ψ(n) of §4.3: an estimate of the number of
// memory accesses needed to look up a key in a structure holding n entries.
// The query planner's estimator E multiplies these along candidate plans.
// The constants follow the paper's examples (m_btree(n) = log2 n,
// m_dlist(n) = n) with small floors so empty structures are not free.

// LookupCost returns m_ψ(n) for kind k.
func LookupCost(k Kind, n float64) float64 {
	if n < 1 {
		n = 1
	}
	switch k {
	case DListKind, SListKind:
		return n / 2 // expected scan length
	case HTableKind:
		return 2 // hash + expected O(1) chain
	case AVLKind, SortedArrKind, SkipListKind:
		return math.Log2(n) + 1
	case VectorKind:
		return 1
	default:
		return n
	}
}

// ScanCost returns the cost of iterating all n entries of a structure of
// kind k: the per-entry visit cost times n, with pointer-chasing structures
// slightly more expensive per entry than dense ones.
func ScanCost(k Kind, n float64) float64 {
	if n < 1 {
		n = 1
	}
	switch k {
	case VectorKind, SortedArrKind:
		return n
	default:
		return 2 * n
	}
}

// InsertCost returns the cost of inserting into a structure holding n
// entries. Lists are O(1); ordered structures pay a lookup; sorted arrays
// additionally shift.
func InsertCost(k Kind, n float64) float64 {
	if n < 1 {
		n = 1
	}
	switch k {
	case DListKind, SListKind:
		return 1
	case HTableKind:
		return 2
	case AVLKind, SkipListKind:
		return math.Log2(n) + 1
	case SortedArrKind:
		return math.Log2(n) + n/2
	case VectorKind:
		return 1
	default:
		return n
	}
}

// DeleteCost returns the cost of deleting from a structure holding n
// entries.
func DeleteCost(k Kind, n float64) float64 {
	if n < 1 {
		n = 1
	}
	switch k {
	case DListKind:
		return n / 2 // scan; O(1) with a handle, see HandleDeleteCost
	case SListKind:
		return n / 2
	case HTableKind:
		return 2
	case AVLKind, SkipListKind:
		return math.Log2(n) + 1
	case SortedArrKind:
		return math.Log2(n) + n/2
	case VectorKind:
		return 1
	default:
		return n
	}
}

// HandleDeleteCost returns the cost of unlinking when the caller holds a
// direct handle to the entry (the intrusive-container capability). Only the
// doubly-linked list supports it; other kinds fall back to DeleteCost.
func HandleDeleteCost(k Kind, n float64) float64 {
	if k == DListKind {
		return 1
	}
	return DeleteCost(k, n)
}
