package dstruct

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// HTable is a separately-chained hash table over the FNV-1a hash of the
// key's value encoding. It doubles when the load factor reaches 1, so Get,
// Put, and Delete are expected O(1).
type HTable[V any] struct {
	buckets []*htNode[V]
	n       int

	// Copy-on-write state. After Clone the bucket slice is shared between
	// both tables (sharedBuckets) and every node carries a token neither
	// side owns, so the first write to a bucket copies the slice and that
	// bucket's chain. Before any Clone both owner fields are nil and writes
	// mutate in place at no extra cost.
	owner         *htOwner
	sharedBuckets bool
}

type htOwner struct{ _ byte }

type htNode[V any] struct {
	key   relation.Tuple
	enc   string // cached ValuesKey of key
	hash  uint64
	val   V
	next  *htNode[V]
	owner *htOwner
}

const htInitialBuckets = 8

// NewHTable returns an empty hash table.
func NewHTable[V any]() *HTable[V] {
	return &HTable[V]{buckets: make([]*htNode[V], htInitialBuckets)}
}

// Kind returns HTableKind.
func (h *HTable[V]) Kind() Kind { return HTableKind }

// Len returns the number of entries.
func (h *HTable[V]) Len() int { return h.n }

func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	hash := uint64(offset)
	for i := 0; i < len(s); i++ {
		hash ^= uint64(s[i])
		hash *= prime
	}
	return hash
}

// fnv1aBytes is fnv1a over a byte slice; kept separate so hot callers with a
// stack-allocated encoding buffer avoid a string conversion.
func fnv1aBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	hash := uint64(offset)
	for i := 0; i < len(b); i++ {
		hash ^= uint64(b[i])
		hash *= prime
	}
	return hash
}

func (h *HTable[V]) bucket(hash uint64) int {
	return int(hash & uint64(len(h.buckets)-1))
}

// Get returns the value for k.
func (h *HTable[V]) Get(k relation.Tuple) (V, bool) {
	enc := k.ValuesKey()
	hash := fnv1a(enc)
	for n := h.buckets[h.bucket(hash)]; n != nil; n = n.next {
		if n.hash == hash && n.enc == enc {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup: the key encoding is
// built in a stack buffer and compared against the cached encodings without
// converting, so the whole lookup allocates nothing.
func (h *HTable[V]) GetByValue(v value.Value) (V, bool) {
	var arr [24]byte
	enc := v.AppendEncode(arr[:0])
	hash := fnv1aBytes(enc)
	for n := h.buckets[h.bucket(hash)]; n != nil; n = n.next {
		if n.hash == hash && n.enc == string(enc) {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// ownSlice makes the bucket slice itself writable, copying it if it is
// still shared with a clone.
func (h *HTable[V]) ownSlice() {
	if h.sharedBuckets {
		h.buckets = append([]*htNode[V](nil), h.buckets...)
		h.sharedBuckets = false
	}
}

// ownBucket makes bucket b's slot and every node of its chain mutable by
// this table — shared nodes are copied and re-stamped — and returns the
// chain head. Chains average a single node (the table doubles at load
// factor 1), so this copies O(1) nodes in expectation.
func (h *HTable[V]) ownBucket(b int) *htNode[V] {
	h.ownSlice()
	p := &h.buckets[b]
	for *p != nil {
		if n := *p; n.owner != h.owner {
			c := *n
			c.owner = h.owner
			*p = &c
		}
		p = &(*p).next
	}
	return h.buckets[b]
}

// Put inserts or replaces the value for k.
func (h *HTable[V]) Put(k relation.Tuple, v V) {
	enc := k.ValuesKey()
	hash := fnv1a(enc)
	b := h.bucket(hash)
	for n := h.buckets[b]; n != nil; n = n.next {
		if n.hash == hash && n.enc == enc {
			for m := h.ownBucket(b); m != nil; m = m.next {
				if m.hash == hash && m.enc == enc {
					m.val = v
					return
				}
			}
			return // unreachable: the owned chain holds the same keys
		}
	}
	h.ownSlice()
	if h.n >= len(h.buckets) {
		h.grow()
		b = h.bucket(hash)
	}
	h.buckets[b] = &htNode[V]{key: k, enc: enc, hash: hash, val: v, next: h.buckets[b], owner: h.owner}
	h.n++
}

func (h *HTable[V]) grow() {
	old := h.buckets
	h.buckets = make([]*htNode[V], 2*len(old))
	for _, n := range old {
		for n != nil {
			next := n.next
			m := n
			if m.owner != h.owner {
				// Relinking mutates next pointers, so shared nodes are
				// copied into this table's ownership as they move over.
				c := *n
				c.owner = h.owner
				m = &c
			}
			b := h.bucket(m.hash)
			m.next = h.buckets[b]
			h.buckets[b] = m
			n = next
		}
	}
}

// Delete removes k.
func (h *HTable[V]) Delete(k relation.Tuple) bool {
	enc := k.ValuesKey()
	hash := fnv1a(enc)
	b := h.bucket(hash)
	present := false
	for n := h.buckets[b]; n != nil; n = n.next {
		if n.hash == hash && n.enc == enc {
			present = true
			break
		}
	}
	if !present {
		return false
	}
	h.ownBucket(b)
	for p := &h.buckets[b]; *p != nil; p = &(*p).next {
		if (*p).hash == hash && (*p).enc == enc {
			*p = (*p).next
			h.n--
			return true
		}
	}
	return false
}

// Clone returns an independent table sharing the bucket slice and every
// chain node with the receiver; both sides copy buckets they later write.
//
//relvet:role=clone
func (h *HTable[V]) Clone() Map[V] {
	h.owner = new(htOwner)
	h.sharedBuckets = true
	c := *h
	c.owner = new(htOwner)
	return &c
}

// Range visits entries in bucket order. Entries may be deleted during
// iteration; entries inserted during iteration may or may not be visited.
func (h *HTable[V]) Range(f func(k relation.Tuple, v V) bool) {
	for _, head := range h.buckets {
		for n := head; n != nil; {
			next := n.next
			if !f(n.key, n.val) {
				return
			}
			n = next
		}
	}
}
