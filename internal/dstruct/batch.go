package dstruct

import "repro/internal/relation"

// Entries is the optional bulk-extraction capability behind the vectorized
// execution tier: one call appends every entry to caller-owned slices, in
// the same order Range would visit them, without a per-entry callback. The
// batch scan stage in plan.CompileBatch discovers it by type assertion (the
// same pattern as Ranger) and falls back to Range when absent, so the
// capability is a pure fast path, never a requirement.
//
// Implementations must not allocate beyond growing ks/vs, and callers must
// not mutate the map while holding the returned key tuples.
type Entries[V any] interface {
	AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V)
}

// AppendEntries appends every entry of m to ks/vs in Range order, using the
// Entries fast path when m provides it and a Range sweep otherwise. The
// sweep lives in its own function so the fast path never pays the heap
// boxing the Range closure's captures would force on ks and vs.
func AppendEntries[V any](m Map[V], ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	if e, ok := m.(Entries[V]); ok {
		return e.AppendEntries(ks, vs)
	}
	return appendViaRange(m, ks, vs)
}

func appendViaRange[V any](m Map[V], ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	m.Range(func(k relation.Tuple, v V) bool {
		ks = append(ks, k)
		vs = append(vs, v)
		return true
	})
	return ks, vs
}

// AppendEntries appends entries in ascending key order (Range order).
func (t *AVL[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	return appendAVL(t.root, ks, vs)
}

func appendAVL[V any](n *avlNode[V], ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	if n == nil {
		return ks, vs
	}
	ks, vs = appendAVL(n.left, ks, vs)
	ks = append(ks, n.key)
	vs = append(vs, n.val)
	return appendAVL(n.right, ks, vs)
}

// AppendEntries appends entries in insertion order (Range order).
func (l *DList[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	for e := l.sentinel.next; e != &l.sentinel; e = e.next {
		ks = append(ks, e.Key)
		vs = append(vs, e.Val)
	}
	return ks, vs
}

// AppendEntries appends entries newest-first (Range order).
func (l *SList[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	for n := l.head; n != nil; n = n.next {
		ks = append(ks, n.key)
		vs = append(vs, n.val)
	}
	return ks, vs
}

// AppendEntries appends entries in bucket order (Range order).
func (h *HTable[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	for _, head := range h.buckets {
		for n := head; n != nil; n = n.next {
			ks = append(ks, n.key)
			vs = append(vs, n.val)
		}
	}
	return ks, vs
}

// AppendEntries appends entries in ascending key order (Range order).
func (s *SkipList[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		ks = append(ks, n.key)
		vs = append(vs, n.val)
	}
	return ks, vs
}

// AppendEntries appends entries in ascending key order (Range order).
// Unlike Range it does not snapshot the key array first: bulk extraction is
// a read-only sweep, so the delete-during-iteration tolerance Range buys
// with its copy is not needed.
func (s *SortedArr[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	return append(ks, s.keys...), append(vs, s.vals...)
}

// AppendEntries appends present slots in ascending key order (Range order).
// Vector stores no key tuples, so this is the one structure whose extraction
// allocates: each present slot synthesizes its single-column key, exactly as
// Range does.
func (v *Vector[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	for i := range v.slots {
		if v.slots[i].present {
			ks = append(ks, relation.NewTuple(relation.BindInt(v.col, v.base+int64(i))))
			vs = append(vs, v.slots[i].val)
		}
	}
	return ks, vs
}

// AppendEntries keeps the bulk-extraction fast path visible through the
// fault wrapper, mirroring RangeBetween: the vectorized scan stage discovers
// the capability by type assertion, which would otherwise stop at the
// wrapper and silently pin every batch execution to the Range fallback while
// injection is on. The injection point is the same one Range fires — a bulk
// extraction is one logical range sweep.
func (f *faultMap[V]) AppendEntries(ks []relation.Tuple, vs []V) ([]relation.Tuple, []V) {
	_ = f.p.Point("dstruct.range", false)
	return AppendEntries(f.m, ks, vs)
}
