package dstruct

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// rangers returns the containers implementing the ordered Ranger
// extension.
func rangers() map[Kind]Map[int] {
	return map[Kind]Map[int]{
		AVLKind:       NewAVL[int](),
		SortedArrKind: NewSortedArr[int](),
		SkipListKind:  NewSkipList[int](),
		VectorKind:    NewVector[int](),
	}
}

func TestRangeBetweenAgainstFilter(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for kind, m := range rangers() {
		t.Run(string(kind), func(t *testing.T) {
			ranger, ok := m.(Ranger[int])
			if !ok {
				t.Fatalf("%s does not implement Ranger", kind)
			}
			live := make(map[int64]int)
			for i := 0; i < 300; i++ {
				k := int64(rnd.Intn(200))
				v := rnd.Intn(1000)
				m.Put(key1(k), v)
				live[k] = v
				if rnd.Intn(5) == 0 {
					d := int64(rnd.Intn(200))
					m.Delete(key1(d))
					delete(live, d)
				}
			}
			cases := []struct {
				lo, hi       int64
				hasLo, hasHi bool
			}{
				{10, 50, true, true},
				{0, 0, true, true},    // single point
				{150, 10, true, true}, // empty (inverted)
				{100, 0, true, false}, // lower bound only
				{0, 100, false, true}, // upper bound only
				{0, 0, false, false},  // unbounded
			}
			for _, c := range cases {
				lo, hi := relation.Tuple{}, relation.Tuple{}
				if c.hasLo {
					lo = key1(c.lo)
				}
				if c.hasHi {
					hi = key1(c.hi)
				}
				got := make(map[int64]int)
				var order []int64
				ranger.RangeBetween(lo, hi, func(k relation.Tuple, v int) bool {
					kv := k.MustGet("k").Int()
					got[kv] = v
					order = append(order, kv)
					return true
				})
				want := make(map[int64]int)
				for k, v := range live {
					if c.hasLo && k < c.lo {
						continue
					}
					if c.hasHi && k > c.hi {
						continue
					}
					want[k] = v
				}
				if len(got) != len(want) {
					t.Fatalf("range [%d,%d] (lo=%v hi=%v): got %d entries, want %d",
						c.lo, c.hi, c.hasLo, c.hasHi, len(got), len(want))
				}
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("range mismatch at %d", k)
					}
				}
				for i := 1; i < len(order); i++ {
					if order[i-1] >= order[i] {
						t.Fatalf("range visit not in ascending order: %v", order)
					}
				}
			}
		})
	}
}

func TestRangeBetweenEarlyStop(t *testing.T) {
	for kind, m := range rangers() {
		for i := int64(0); i < 20; i++ {
			m.Put(key1(i), int(i))
		}
		n := 0
		m.(Ranger[int]).RangeBetween(key1(5), relation.Tuple{}, func(relation.Tuple, int) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Errorf("%s: early stop visited %d", kind, n)
		}
	}
}

func TestUnorderedKindsHaveNoRanger(t *testing.T) {
	for _, kind := range []Kind{DListKind, SListKind, HTableKind} {
		m := New[int](kind)
		if _, ok := m.(Ranger[int]); ok {
			t.Errorf("%s unexpectedly implements Ranger", kind)
		}
	}
}
