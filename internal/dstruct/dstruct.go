// Package dstruct is the library of primitive data structures from which
// decompositions are assembled (§3, §6 of the paper). Every structure
// implements one associative-container interface, Map, from tuple-valued
// keys to values; the decomposition runtime and the code generator are
// parameterized over the choice of structure ψ exactly as the paper's RELC
// is parameterized over its C++ templates.
//
// The set of structures mirrors the paper's library: unordered doubly-linked
// lists (with O(1) handle-based unlink standing in for Boost's intrusive
// lists), singly-linked lists, chained hash tables, AVL trees (the ordered
// std::map/boost::intrusive::set role), vectors, and sorted arrays. All are
// implemented here from scratch on stdlib only.
package dstruct

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/value"
)

// Kind names a primitive data structure ψ.
type Kind string

// The available data structures.
const (
	DListKind     Kind = "dlist"     // unordered doubly-linked list
	SListKind     Kind = "slist"     // singly-linked list
	HTableKind    Kind = "htable"    // chained hash table
	AVLKind       Kind = "avl"       // AVL tree, ordered iteration
	VectorKind    Kind = "vector"    // dense array over small integer keys
	SortedArrKind Kind = "sortedarr" // sorted array, binary search
	SkipListKind  Kind = "skiplist"  // probabilistic ordered map
)

// AllKinds lists every Kind, in a stable order used by the autotuner when it
// enumerates data-structure assignments.
func AllKinds() []Kind {
	return []Kind{DListKind, SListKind, HTableKind, AVLKind, VectorKind, SortedArrKind, SkipListKind}
}

// Valid reports whether k names a known structure.
func (k Kind) Valid() bool {
	switch k {
	case DListKind, SListKind, HTableKind, AVLKind, VectorKind, SortedArrKind, SkipListKind:
		return true
	}
	return false
}

// Ordered reports whether the structure iterates keys in sorted order.
func (k Kind) Ordered() bool {
	return k == AVLKind || k == SortedArrKind || k == VectorKind || k == SkipListKind
}

// IntKeyedOnly reports whether the structure can only key on a single
// integer column (the vector of the paper, which maps keys to values by
// array index).
func (k Kind) IntKeyedOnly() bool { return k == VectorKind }

// A Map is an associative container from tuple keys to values of type V.
// All keys stored in a single Map share one column domain; the decomposition
// type system guarantees this, and implementations may exploit it (e.g. the
// AVL tree compares values column-wise).
//
// Range visits entries until the callback returns false; the iteration order
// is insertion order for lists, bucket order for hash tables, and key order
// for ordered structures.
type Map[V any] interface {
	// Get returns the value for k and whether it is present.
	Get(k relation.Tuple) (V, bool)
	// GetByValue is Get specialized to maps keyed by exactly one column: it
	// looks up the entry whose single key value is v without materializing a
	// key tuple, so compiled point accesses allocate nothing on the way
	// down. Callers must only use it on single-column-keyed maps.
	GetByValue(v value.Value) (V, bool)
	// Put inserts or replaces the value for k.
	Put(k relation.Tuple, v V)
	// Delete removes k, reporting whether it was present.
	Delete(k relation.Tuple) bool
	// Len returns the number of entries.
	Len() int
	// Range visits entries until f returns false.
	Range(f func(k relation.Tuple, v V) bool)
	// Clone returns an independent copy of the map: mutating either side
	// after the call never changes what the other side observes. Structures
	// with immutable-friendly layouts (the AVL tree, the hash table, the
	// vector, the sorted array) share substructure and copy lazily on the
	// first write to each shared piece, so Clone itself is cheap; list-shaped
	// structures copy their spines eagerly. The clone is the same concrete
	// kind as the receiver, preserving optional capabilities (Ranger,
	// Entries). Clone is the primitive under copy-on-write versioning
	// (instance.BeginVersion): a frozen version's maps are never mutated, so
	// readers may traverse them while the clone absorbs writes.
	Clone() Map[V]
	// Kind identifies the underlying structure.
	Kind() Kind
}

// New constructs an empty Map of the given kind. It panics on an unknown
// kind; decomposition validation rejects unknown kinds long before a Map is
// built. While a faultinject plane is installed the map is wrapped with
// injection points (see fault.go); otherwise the bare structure is returned
// and injection costs nothing.
func New[V any](k Kind) Map[V] {
	return wrapFault(newBare[V](k))
}

func newBare[V any](k Kind) Map[V] {
	switch k {
	case DListKind:
		return NewDList[V]()
	case SListKind:
		return NewSList[V]()
	case HTableKind:
		return NewHTable[V]()
	case AVLKind:
		return NewAVL[V]()
	case VectorKind:
		return NewVector[V]()
	case SortedArrKind:
		return NewSortedArr[V]()
	case SkipListKind:
		return NewSkipList[V]()
	default:
		panic(fmt.Sprintf("dstruct: unknown kind %q", k))
	}
}
