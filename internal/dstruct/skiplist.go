package dstruct

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// SkipList is a probabilistic ordered map: expected O(log n) Get/Put/Delete
// with ordered iteration, trading the AVL tree's rebalancing for randomized
// tower heights. It exists mostly to demonstrate the library's
// extensibility — the paper: "The set of data structures is extensible; any
// data structure implementing a common interface may be used."
//
// The tower-height generator is deterministic (xorshift seeded per list),
// so instances built by identical operation sequences are identical, which
// the reproducibility of the benchmarks relies on.
type SkipList[V any] struct {
	head  *skipNode[V]
	level int
	n     int
	rng   uint64
}

const skipMaxLevel = 24

type skipNode[V any] struct {
	key  relation.Tuple
	val  V
	next []*skipNode[V]
}

// NewSkipList returns an empty skip list.
func NewSkipList[V any]() *SkipList[V] {
	return &SkipList[V]{
		head:  &skipNode[V]{next: make([]*skipNode[V], skipMaxLevel)},
		level: 1,
		rng:   0x9e3779b97f4a7c15,
	}
}

// Kind returns SkipListKind.
func (s *SkipList[V]) Kind() Kind { return SkipListKind }

// Len returns the number of entries.
func (s *SkipList[V]) Len() int { return s.n }

func (s *SkipList[V]) randomLevel() int {
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	lvl := 1
	for x := s.rng; x&1 == 1 && lvl < skipMaxLevel; x >>= 1 {
		lvl++
	}
	return lvl
}

// findPred fills pred with the rightmost node strictly before k on each
// level and returns the candidate node at level 0.
func (s *SkipList[V]) findPred(k relation.Tuple, pred []*skipNode[V]) *skipNode[V] {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key.Compare(k) < 0 {
			x = x.next[i]
		}
		if pred != nil {
			pred[i] = x
		}
	}
	return x.next[0]
}

// Get returns the value for k.
func (s *SkipList[V]) Get(k relation.Tuple) (V, bool) {
	if n := s.findPred(k, nil); n != nil && n.key.Compare(k) == 0 {
		return n.val, true
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup: the level descent
// compares the sole key values directly, with no key tuple and no
// allocation.
func (s *SkipList[V]) GetByValue(v value.Value) (V, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && value.Compare(x.next[i].key.ValueAt(0), v) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && value.Compare(n.key.ValueAt(0), v) == 0 {
		return n.val, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k.
func (s *SkipList[V]) Put(k relation.Tuple, v V) {
	pred := make([]*skipNode[V], skipMaxLevel)
	for i := range pred {
		pred[i] = s.head
	}
	if n := s.findPred(k, pred); n != nil && n.key.Compare(k) == 0 {
		n.val = v
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		s.level = lvl
	}
	node := &skipNode[V]{key: k, val: v, next: make([]*skipNode[V], lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = pred[i].next[i]
		pred[i].next[i] = node
	}
	s.n++
}

// Delete removes k.
func (s *SkipList[V]) Delete(k relation.Tuple) bool {
	pred := make([]*skipNode[V], skipMaxLevel)
	for i := range pred {
		pred[i] = s.head
	}
	n := s.findPred(k, pred)
	if n == nil || n.key.Compare(k) != 0 {
		return false
	}
	for i := 0; i < len(n.next); i++ {
		if pred[i].next[i] == n {
			pred[i].next[i] = n.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.n--
	return true
}

// Clone returns an independent copy: an eager rebuild in key order on a
// fresh deterministic tower generator. Towers embed mutable next arrays at
// every level, so lazy sharing would need per-level ownership tracking for
// a structure whose whole point is simplicity.
//
//relvet:role=clone
func (s *SkipList[V]) Clone() Map[V] {
	c := NewSkipList[V]()
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		c.Put(n.key, n.val)
	}
	return c
}

// Range visits entries in ascending key order.
func (s *SkipList[V]) Range(f func(k relation.Tuple, v V) bool) {
	for n := s.head.next[0]; n != nil; {
		next := n.next[0]
		if !f(n.key, n.val) {
			return
		}
		n = next
	}
}
