package dstruct

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/value"
)

// vectorMaxSpan bounds the index range a Vector will materialize. Beyond it
// the structure panics: the paper's autotuner likewise generates
// decompositions whose data structures are hopeless for the workload (they
// show up as timeouts in Figures 11 and 13); our autotuner converts the
// panic into a "did not finish" entry.
const vectorMaxSpan = 1 << 24

// Vector is a dense array mapping a single integer key column to values by
// index, the ψ = vector of the paper (used there to map the two process
// states to lists). It auto-grows in both directions around the first key
// inserted. Get, Put, and Delete are O(1); Range is ordered by key.
type Vector[V any] struct {
	base    int64 // key value of slot 0; meaningful once n > 0 or len(slots) > 0
	col     string
	slots   []vectorSlot[V]
	n       int
	started bool
	shared  bool // slots are shared with a Clone; copy before writing in place
}

type vectorSlot[V any] struct {
	val     V
	present bool
}

// NewVector returns an empty vector.
func NewVector[V any]() *Vector[V] { return &Vector[V]{} }

// Kind returns VectorKind.
func (v *Vector[V]) Kind() Kind { return VectorKind }

// Len returns the number of present entries.
func (v *Vector[V]) Len() int { return v.n }

func vectorIndex(k relation.Tuple) int64 {
	if k.Len() != 1 {
		panic(fmt.Sprintf("dstruct: vector key must be a single column, got %v", k))
	}
	val := k.Bindings()[0].Val
	if val.Kind() != value.Int {
		panic(fmt.Sprintf("dstruct: vector key must be an integer, got %v", val))
	}
	return val.Int()
}

// Get returns the value for k.
func (v *Vector[V]) Get(k relation.Tuple) (V, bool) {
	var zero V
	if !v.started {
		return zero, false
	}
	i := vectorIndex(k) - v.base
	if i < 0 || i >= int64(len(v.slots)) || !v.slots[i].present {
		return zero, false
	}
	return v.slots[i].val, true
}

// GetByValue is the single-column-key point lookup: the array index comes
// straight from the key value, with no key tuple and no allocation.
func (v *Vector[V]) GetByValue(key value.Value) (V, bool) {
	var zero V
	if !v.started || key.Kind() != value.Int {
		return zero, false
	}
	i := key.Int() - v.base
	if i < 0 || i >= int64(len(v.slots)) || !v.slots[i].present {
		return zero, false
	}
	return v.slots[i].val, true
}

// Put inserts or replaces the value for k, growing the array as needed. It
// panics if the span of observed keys exceeds vectorMaxSpan, mirroring a
// decomposition whose vector edge is unusable for the workload.
func (v *Vector[V]) Put(k relation.Tuple, v2 V) {
	key := vectorIndex(k)
	if !v.started {
		v.base = key
		v.col = k.Bindings()[0].Col
		v.slots = make([]vectorSlot[V], 1)
		v.started = true
	}
	i := key - v.base
	switch {
	case i < 0:
		span := int64(len(v.slots)) - i
		if span > vectorMaxSpan {
			panic(fmt.Sprintf("dstruct: vector span %d exceeds limit", span))
		}
		grown := make([]vectorSlot[V], span)
		copy(grown[-i:], v.slots)
		v.slots = grown
		v.base = key
		v.shared = false
		i = 0
	case i >= int64(len(v.slots)):
		if i+1 > vectorMaxSpan {
			panic(fmt.Sprintf("dstruct: vector span %d exceeds limit", i+1))
		}
		grown := make([]vectorSlot[V], i+1)
		copy(grown, v.slots)
		v.slots = grown
		v.shared = false
	default:
		v.ownSlots()
	}
	if !v.slots[i].present {
		v.n++
	}
	v.slots[i] = vectorSlot[V]{val: v2, present: true}
}

// ownSlots makes the slot array writable, copying it if a Clone still
// shares it. The grow paths allocate fresh arrays and need no copy.
func (v *Vector[V]) ownSlots() {
	if v.shared {
		v.slots = append([]vectorSlot[V](nil), v.slots...)
		v.shared = false
	}
}

// Delete removes k. The array never shrinks; slots are cheap.
func (v *Vector[V]) Delete(k relation.Tuple) bool {
	if !v.started {
		return false
	}
	i := vectorIndex(k) - v.base
	if i < 0 || i >= int64(len(v.slots)) || !v.slots[i].present {
		return false
	}
	v.ownSlots()
	var zero V
	v.slots[i] = vectorSlot[V]{val: zero}
	v.n--
	return true
}

// Clone returns an independent vector sharing the slot array with the
// receiver; whichever side writes first copies it.
//
//relvet:role=clone
func (v *Vector[V]) Clone() Map[V] {
	v.shared = true
	c := *v
	return &c
}

// Range visits present entries in ascending key order. Vector cannot
// reconstruct the original key column name from the index alone, so it
// remembers keys implicitly: it re-synthesizes the key tuple from the stored
// column of the first Put. To keep that exact, Vector stores the column name
// at first use.
func (v *Vector[V]) Range(f func(k relation.Tuple, v V) bool) {
	for i := range v.slots {
		if v.slots[i].present {
			k := relation.NewTuple(relation.BindInt(v.col, v.base+int64(i)))
			if !f(k, v.slots[i].val) {
				return
			}
		}
	}
}
