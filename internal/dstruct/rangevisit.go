package dstruct

import "repro/internal/relation"

// Ranger is the optional interface of ordered containers that can visit
// only the entries whose keys fall in [lo, hi] without touching the rest.
// The range-query extension of package plan (§2 of the paper calls
// order-based queries a straightforward extension of the equality-only
// interface) uses it to turn O(n) filtered scans into O(log n + k) range
// scans.
//
// lo and hi are inclusive bounds over the container's key domain; a zero
// bound tuple (Len() == 0) means unbounded on that side.
type Ranger[V any] interface {
	RangeBetween(lo, hi relation.Tuple, f func(k relation.Tuple, v V) bool)
}

func unbounded(t relation.Tuple) bool { return t.Len() == 0 }

// RangeBetween visits the AVL entries with lo ≤ k ≤ hi in ascending order,
// pruning subtrees outside the bounds.
func (t *AVL[V]) RangeBetween(lo, hi relation.Tuple, f func(k relation.Tuple, v V) bool) {
	var walk func(n *avlNode[V]) bool
	walk = func(n *avlNode[V]) bool {
		if n == nil {
			return true
		}
		aboveLo := unbounded(lo) || n.key.Compare(lo) >= 0
		belowHi := unbounded(hi) || n.key.Compare(hi) <= 0
		if aboveLo {
			if !walk(n.left) {
				return false
			}
		}
		if aboveLo && belowHi {
			if !f(n.key, n.val) {
				return false
			}
		}
		if belowHi {
			if !walk(n.right) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// RangeBetween visits the sorted-array entries in [lo, hi] by binary
// searching the lower bound.
func (s *SortedArr[V]) RangeBetween(lo, hi relation.Tuple, f func(k relation.Tuple, v V) bool) {
	start := 0
	if !unbounded(lo) {
		start, _ = s.search(lo)
	}
	for i := start; i < len(s.keys); i++ {
		if !unbounded(hi) && s.keys[i].Compare(hi) > 0 {
			return
		}
		if !f(s.keys[i], s.vals[i]) {
			return
		}
	}
}

// RangeBetween visits the skip-list entries in [lo, hi], seeking the lower
// bound through the towers.
func (s *SkipList[V]) RangeBetween(lo, hi relation.Tuple, f func(k relation.Tuple, v V) bool) {
	n := s.head.next[0]
	if !unbounded(lo) {
		n = s.findPred(lo, nil)
	}
	for ; n != nil; n = n.next[0] {
		if !unbounded(hi) && n.key.Compare(hi) > 0 {
			return
		}
		if !f(n.key, n.val) {
			return
		}
	}
}

// RangeBetween visits the vector slots in [lo, hi] directly by index.
func (v *Vector[V]) RangeBetween(lo, hi relation.Tuple, f func(k relation.Tuple, v2 V) bool) {
	if !v.started {
		return
	}
	from, to := int64(0), int64(len(v.slots))-1
	if !unbounded(lo) {
		if i := vectorIndex(lo) - v.base; i > from {
			from = i
		}
	}
	if !unbounded(hi) {
		if i := vectorIndex(hi) - v.base; i < to {
			to = i
		}
	}
	for i := from; i <= to && i >= 0 && i < int64(len(v.slots)); i++ {
		if v.slots[i].present {
			k := relation.NewTuple(relation.BindInt(v.col, v.base+i))
			if !f(k, v.slots[i].val) {
				return
			}
		}
	}
}
