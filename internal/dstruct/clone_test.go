package dstruct

// Clone contract tests: a clone and its receiver are fully independent —
// mutations on either side, in any order, interleaved with structural
// events (hash-table growth, AVL rebalancing, vector regrowth), never leak
// into the other. The randomized differential drives both sides against
// reference map oracles.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// snapshotOf captures a map's contents for later comparison.
func snapshotOf(m Map[int]) map[string]int {
	got := map[string]int{}
	m.Range(func(k relation.Tuple, v int) bool {
		got[k.ValuesKey()] = v
		return true
	})
	return got
}

func sameContents(t *testing.T, kind Kind, label string, m Map[int], want map[string]int) {
	t.Helper()
	got := snapshotOf(m)
	if len(got) != len(want) || m.Len() != len(want) {
		t.Fatalf("%s/%s: %d entries (Len %d), want %d\n got %v\nwant %v",
			kind, label, len(got), m.Len(), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s/%s: key %s = %d, want %d", kind, label, k, got[k], v)
		}
	}
}

// TestCloneIndependence mutates the receiver after cloning and the clone
// after cloning, in both directions, and checks neither side observes the
// other's writes.
func TestCloneIndependence(t *testing.T) {
	for _, kind := range AllKinds() {
		m := New[int](kind)
		for i := int64(0); i < 64; i++ {
			m.Put(key1(i), int(i))
		}
		before := snapshotOf(m)

		c := m.Clone()
		if c.Kind() != kind {
			t.Fatalf("%s: clone Kind = %s", kind, c.Kind())
		}
		sameContents(t, kind, "clone/initial", c, before)

		// Mutate the receiver: overwrites, deletes, and inserts that force
		// structural churn (growth, rebalancing) over shared nodes.
		for i := int64(0); i < 32; i++ {
			m.Put(key1(i), int(1000+i))
		}
		for i := int64(32); i < 48; i++ {
			m.Delete(key1(i))
		}
		for i := int64(64); i < 160; i++ {
			m.Put(key1(i), int(i))
		}
		sameContents(t, kind, "clone/after-receiver-writes", c, before)

		// Mutate the clone; the receiver's state must hold too.
		afterRecv := snapshotOf(m)
		for i := int64(48); i < 64; i++ {
			c.Delete(key1(i))
		}
		for i := int64(200); i < 264; i++ {
			c.Put(key1(i), int(i))
		}
		c.Put(key1(0), -1)
		sameContents(t, kind, "receiver/after-clone-writes", m, afterRecv)

		// And the clone's own writes landed.
		if v, ok := c.Get(key1(0)); !ok || v != -1 {
			t.Fatalf("%s: clone lost its own overwrite: %d %v", kind, v, ok)
		}
		if _, ok := c.Get(key1(50)); ok {
			t.Fatalf("%s: clone still holds a key it deleted", kind)
		}
	}
}

// TestCloneChainsDifferential chains clones (clone of a clone, repeated
// re-cloning of a mutated receiver) under a randomized schedule, comparing
// every live copy against its own oracle at each step.
func TestCloneChainsDifferential(t *testing.T) {
	for _, kind := range AllKinds() {
		rng := rand.New(rand.NewSource(7))
		type pair struct {
			m Map[int]
			o map[string]int
		}
		live := []*pair{{m: New[int](kind), o: map[string]int{}}}
		for step := 0; step < 2000; step++ {
			p := live[rng.Intn(len(live))]
			k := int64(rng.Intn(100))
			switch op := rng.Intn(10); {
			case op < 5:
				v := rng.Intn(1 << 20)
				p.m.Put(key1(k), v)
				p.o[key1(k).ValuesKey()] = v
			case op < 8:
				del := p.m.Delete(key1(k))
				_, want := p.o[key1(k).ValuesKey()]
				if del != want {
					t.Fatalf("%s step %d: Delete = %v, oracle %v", kind, step, del, want)
				}
				delete(p.o, key1(k).ValuesKey())
			default:
				if len(live) < 8 {
					o2 := make(map[string]int, len(p.o))
					for kk, vv := range p.o {
						o2[kk] = vv
					}
					live = append(live, &pair{m: p.m.Clone(), o: o2})
				}
			}
		}
		for i, p := range live {
			sameContents(t, kind, fmt.Sprintf("chain-%d", i), p.m, p.o)
		}
	}
}

// TestCloneKeepsCapabilities checks that clones remain usable through the
// optional fast-path interfaces plan execution discovers by type assertion.
func TestCloneKeepsCapabilities(t *testing.T) {
	for _, kind := range AllKinds() {
		m := New[int](kind)
		for i := int64(0); i < 16; i++ {
			m.Put(key1(i), int(i))
		}
		c := m.Clone()
		if _, ok := m.(Ranger[int]); ok {
			r, still := c.(Ranger[int])
			if !still {
				t.Fatalf("%s: clone lost RangeBetween", kind)
			}
			sum := 0
			r.RangeBetween(key1(4), key1(7), func(k relation.Tuple, v int) bool {
				sum += v
				return true
			})
			if sum != 4+5+6+7 {
				t.Fatalf("%s: clone RangeBetween sum = %d", kind, sum)
			}
		}
		if _, ok := m.(Entries[int]); ok {
			if _, still := c.(Entries[int]); !still {
				t.Fatalf("%s: clone lost AppendEntries", kind)
			}
		}
	}
}
