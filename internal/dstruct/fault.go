package dstruct

import (
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/value"
)

// faultMap wraps a Map with fault-injection points. It exists only while a
// faultinject.Plane is installed at construction time (see New); production
// maps are never wrapped, so the injection layer costs nothing when off.
//
// Every point fires before the underlying operation runs ("fail-before"
// semantics): an injected panic models the operation never having happened,
// which is the contract the instance undo log restores against. The Map
// interface cannot return errors, so all dstruct sites are panic-only.
type faultMap[V any] struct {
	m Map[V]
	p *faultinject.Plane
}

// wrapFault wraps m when a fault plane is installed.
func wrapFault[V any](m Map[V]) Map[V] {
	if p := faultinject.Active(); p != nil {
		return &faultMap[V]{m: m, p: p}
	}
	return m
}

func (f *faultMap[V]) Get(k relation.Tuple) (V, bool) {
	_ = f.p.Point("dstruct.get", false)
	return f.m.Get(k)
}

func (f *faultMap[V]) GetByValue(v value.Value) (V, bool) {
	_ = f.p.Point("dstruct.getbyvalue", false)
	return f.m.GetByValue(v)
}

func (f *faultMap[V]) Put(k relation.Tuple, v V) {
	_ = f.p.Point("dstruct.put", false)
	f.m.Put(k, v)
}

func (f *faultMap[V]) Delete(k relation.Tuple) bool {
	_ = f.p.Point("dstruct.delete", false)
	return f.m.Delete(k)
}

func (f *faultMap[V]) Len() int { return f.m.Len() }

func (f *faultMap[V]) Range(fn func(k relation.Tuple, v V) bool) {
	_ = f.p.Point("dstruct.range", false)
	f.m.Range(fn)
}

// Clone fires its own point and rewraps the inner clone, so copy-on-write
// node cloning stays inside the injection surface: a schedule can kill a
// mutation exactly at the moment it forks a version.
//
//relvet:role=clone
func (f *faultMap[V]) Clone() Map[V] {
	_ = f.p.Point("dstruct.clone", false)
	return &faultMap[V]{m: f.m.Clone(), p: f.p}
}

func (f *faultMap[V]) Kind() Kind { return f.m.Kind() }

// RangeBetween keeps the range-seek fast path visible through the wrapper:
// plan execution discovers it by type assertion, which would otherwise stop
// at the wrapper and silently pin every range query to the filtered-scan
// fallback while injection is on. An unordered inner map degrades to the
// same filter the caller would have used.
func (f *faultMap[V]) RangeBetween(lo, hi relation.Tuple, fn func(k relation.Tuple, v V) bool) {
	_ = f.p.Point("dstruct.range", false)
	if r, ok := f.m.(Ranger[V]); ok {
		r.RangeBetween(lo, hi, fn)
		return
	}
	f.m.Range(func(k relation.Tuple, v V) bool {
		if !unbounded(lo) && k.Compare(lo) < 0 {
			return true
		}
		if !unbounded(hi) && k.Compare(hi) > 0 {
			return true
		}
		return fn(k, v)
	})
}
