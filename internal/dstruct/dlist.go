package dstruct

import (
	"repro/internal/relation"
	"repro/internal/value"
)

// DList is an unordered doubly-linked list of key/value pairs with a
// sentinel head. Lookup and delete-by-key are O(n); insertion at the tail is
// O(1). Entries double as handles: RemoveEntry unlinks in O(1) given the
// entry, which is the capability the paper gets from Boost's intrusive lists
// and exploits for shared nodes (decomposition 5 of Figure 12).
type DList[V any] struct {
	sentinel DListEntry[V]
	n        int
}

// DListEntry is a node of a DList. It is exposed so callers can retain O(1)
// unlink handles.
type DListEntry[V any] struct {
	Key        relation.Tuple
	Val        V
	prev, next *DListEntry[V]
	list       *DList[V]
}

// NewDList returns an empty doubly-linked list.
func NewDList[V any]() *DList[V] {
	l := &DList[V]{}
	l.sentinel.prev = &l.sentinel
	l.sentinel.next = &l.sentinel
	return l
}

// Kind returns DListKind.
func (l *DList[V]) Kind() Kind { return DListKind }

// Len returns the number of entries.
func (l *DList[V]) Len() int { return l.n }

func (l *DList[V]) find(k relation.Tuple) *DListEntry[V] {
	for e := l.sentinel.next; e != &l.sentinel; e = e.next {
		if e.Key.Equal(k) {
			return e
		}
	}
	return nil
}

// Get returns the value for k.
func (l *DList[V]) Get(k relation.Tuple) (V, bool) {
	if e := l.find(k); e != nil {
		return e.Val, true
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup: a linear scan comparing
// the sole key values, with no key tuple and no allocation.
func (l *DList[V]) GetByValue(v value.Value) (V, bool) {
	for e := l.sentinel.next; e != &l.sentinel; e = e.next {
		if e.Key.ValueAt(0) == v {
			return e.Val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k.
func (l *DList[V]) Put(k relation.Tuple, v V) { l.PutEntry(k, v) }

// PutEntry inserts or replaces the value for k and returns the entry, which
// remains a valid O(1) unlink handle until removed.
func (l *DList[V]) PutEntry(k relation.Tuple, v V) *DListEntry[V] {
	if e := l.find(k); e != nil {
		e.Val = v
		return e
	}
	e := &DListEntry[V]{Key: k, Val: v, list: l}
	e.prev = l.sentinel.prev
	e.next = &l.sentinel
	e.prev.next = e
	l.sentinel.prev = e
	l.n++
	return e
}

// Delete removes k by scanning for it.
func (l *DList[V]) Delete(k relation.Tuple) bool {
	e := l.find(k)
	if e == nil {
		return false
	}
	l.RemoveEntry(e)
	return true
}

// RemoveEntry unlinks e in O(1). Removing an already-removed entry is a
// no-op.
func (l *DList[V]) RemoveEntry(e *DListEntry[V]) {
	if e.list != l || e.prev == nil {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next, e.list = nil, nil, nil
	l.n--
}

// Clone returns an independent copy preserving insertion order. The copy
// is eager: entries embed prev/next pointers into this list's sentinel, so
// no node can be shared between two lists (same deal as intrusive-list
// copies in the paper's C++ library). Entry handles held against the
// receiver do not unlink from the clone.
//
//relvet:role=clone
func (l *DList[V]) Clone() Map[V] {
	c := NewDList[V]()
	for e := l.sentinel.next; e != &l.sentinel; e = e.next {
		ne := &DListEntry[V]{Key: e.Key, Val: e.Val, list: c}
		ne.prev = c.sentinel.prev
		ne.next = &c.sentinel
		ne.prev.next = ne
		c.sentinel.prev = ne
		c.n++
	}
	return c
}

// Range visits entries in insertion order.
func (l *DList[V]) Range(f func(k relation.Tuple, v V) bool) {
	for e := l.sentinel.next; e != &l.sentinel; {
		next := e.next // allow deletion of the visited entry during iteration
		if !f(e.Key, e.Val) {
			return
		}
		e = next
	}
}

// SList is a singly-linked list with head insertion. It is the cheapest
// structure for insert-heavy, scan-only relations; delete-by-key costs a
// scan with a trailing pointer.
type SList[V any] struct {
	head *slistNode[V]
	n    int
}

type slistNode[V any] struct {
	key  relation.Tuple
	val  V
	next *slistNode[V]
}

// NewSList returns an empty singly-linked list.
func NewSList[V any]() *SList[V] { return &SList[V]{} }

// Kind returns SListKind.
func (l *SList[V]) Kind() Kind { return SListKind }

// Len returns the number of entries.
func (l *SList[V]) Len() int { return l.n }

// Get returns the value for k.
func (l *SList[V]) Get(k relation.Tuple) (V, bool) {
	for n := l.head; n != nil; n = n.next {
		if n.key.Equal(k) {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// GetByValue is the single-column-key point lookup, like DList.GetByValue.
func (l *SList[V]) GetByValue(v value.Value) (V, bool) {
	for n := l.head; n != nil; n = n.next {
		if n.key.ValueAt(0) == v {
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the value for k; new keys go to the head.
func (l *SList[V]) Put(k relation.Tuple, v V) {
	for n := l.head; n != nil; n = n.next {
		if n.key.Equal(k) {
			n.val = v
			return
		}
	}
	l.head = &slistNode[V]{key: k, val: v, next: l.head}
	l.n++
}

// Delete removes k.
func (l *SList[V]) Delete(k relation.Tuple) bool {
	for p := &l.head; *p != nil; p = &(*p).next {
		if (*p).key.Equal(k) {
			*p = (*p).next
			l.n--
			return true
		}
	}
	return false
}

// Clone returns an independent copy preserving node order. Eager like
// DList.Clone: sharing a spine whose Delete splices next pointers in place
// would leak writes between the copies, and Put/Delete already cost a scan,
// so the copy changes no asymptotics.
//
//relvet:role=clone
func (l *SList[V]) Clone() Map[V] {
	c := &SList[V]{n: l.n}
	tail := &c.head
	for n := l.head; n != nil; n = n.next {
		nn := &slistNode[V]{key: n.key, val: n.val}
		*tail = nn
		tail = &nn.next
	}
	return c
}

// Range visits entries from most recently inserted to least.
func (l *SList[V]) Range(f func(k relation.Tuple, v V) bool) {
	for n := l.head; n != nil; {
		next := n.next
		if !f(n.key, n.val) {
			return
		}
		n = next
	}
}
