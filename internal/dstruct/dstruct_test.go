package dstruct

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relation"
)

func key1(v int64) relation.Tuple { return relation.NewTuple(relation.BindInt("k", v)) }

func key2(a, b int64) relation.Tuple {
	return relation.NewTuple(relation.BindInt("a", a), relation.BindInt("b", b))
}

func strKey(s string) relation.Tuple { return relation.NewTuple(relation.BindString("k", s)) }

// kindsFor returns the kinds usable with the keys produced by keyGen. The
// vector only accepts single integer columns.
func kindsFor(intSingle bool) []Kind {
	if intSingle {
		return AllKinds()
	}
	var ks []Kind
	for _, k := range AllKinds() {
		if !k.IntKeyedOnly() {
			ks = append(ks, k)
		}
	}
	return ks
}

func TestEmptyMaps(t *testing.T) {
	for _, kind := range AllKinds() {
		m := New[int](kind)
		if m.Len() != 0 {
			t.Errorf("%s: empty Len = %d", kind, m.Len())
		}
		if _, ok := m.Get(key1(1)); ok {
			t.Errorf("%s: Get on empty found a value", kind)
		}
		if m.Delete(key1(1)) {
			t.Errorf("%s: Delete on empty reported success", kind)
		}
		m.Range(func(relation.Tuple, int) bool {
			t.Errorf("%s: Range on empty visited an entry", kind)
			return false
		})
		if m.Kind() != kind {
			t.Errorf("Kind() = %s, want %s", m.Kind(), kind)
		}
	}
}

func TestPutGetDelete(t *testing.T) {
	for _, kind := range AllKinds() {
		m := New[string](kind)
		m.Put(key1(1), "one")
		m.Put(key1(2), "two")
		m.Put(key1(1), "uno") // replace
		if m.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", kind, m.Len())
		}
		if v, ok := m.Get(key1(1)); !ok || v != "uno" {
			t.Errorf("%s: Get(1) = %q, %v", kind, v, ok)
		}
		if !m.Delete(key1(1)) {
			t.Errorf("%s: Delete(1) failed", kind)
		}
		if m.Delete(key1(1)) {
			t.Errorf("%s: double Delete succeeded", kind)
		}
		if _, ok := m.Get(key1(1)); ok {
			t.Errorf("%s: Get after Delete found value", kind)
		}
		if m.Len() != 1 {
			t.Errorf("%s: Len after delete = %d", kind, m.Len())
		}
	}
}

func TestCompositeKeys(t *testing.T) {
	for _, kind := range kindsFor(false) {
		m := New[int](kind)
		m.Put(key2(1, 2), 12)
		m.Put(key2(2, 1), 21)
		if v, _ := m.Get(key2(1, 2)); v != 12 {
			t.Errorf("%s: composite Get = %d", kind, v)
		}
		if v, _ := m.Get(key2(2, 1)); v != 21 {
			t.Errorf("%s: composite Get = %d", kind, v)
		}
	}
}

func TestStringKeys(t *testing.T) {
	for _, kind := range kindsFor(false) {
		m := New[int](kind)
		m.Put(strKey("alpha"), 1)
		m.Put(strKey("beta"), 2)
		if v, ok := m.Get(strKey("alpha")); !ok || v != 1 {
			t.Errorf("%s: string key Get = %d, %v", kind, v, ok)
		}
	}
}

// TestAgainstReference drives every structure with a random operation
// sequence and compares against a plain Go map oracle after each step.
func TestAgainstReference(t *testing.T) {
	for _, kind := range AllKinds() {
		t.Run(string(kind), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(42))
			m := New[int](kind)
			ref := make(map[int64]int)
			for step := 0; step < 3000; step++ {
				k := int64(rnd.Intn(60))
				switch rnd.Intn(3) {
				case 0:
					v := rnd.Intn(1000)
					m.Put(key1(k), v)
					ref[k] = v
				case 1:
					got := m.Delete(key1(k))
					_, want := ref[k]
					if got != want {
						t.Fatalf("step %d: Delete(%d) = %v, want %v", step, k, got, want)
					}
					delete(ref, k)
				default:
					got, ok := m.Get(key1(k))
					want, wok := ref[k]
					if ok != wok || (ok && got != want) {
						t.Fatalf("step %d: Get(%d) = %d,%v want %d,%v", step, k, got, ok, want, wok)
					}
				}
				if m.Len() != len(ref) {
					t.Fatalf("step %d: Len = %d, want %d", step, m.Len(), len(ref))
				}
			}
			// Final full-content check via Range.
			seen := make(map[int64]int)
			m.Range(func(k relation.Tuple, v int) bool {
				seen[k.MustGet("k").Int()] = v
				return true
			})
			if len(seen) != len(ref) {
				t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
			}
			for k, v := range ref {
				if seen[k] != v {
					t.Fatalf("Range content mismatch at %d: %d vs %d", k, seen[k], v)
				}
			}
		})
	}
}

func TestOrderedIteration(t *testing.T) {
	for _, kind := range AllKinds() {
		if !kind.Ordered() {
			continue
		}
		m := New[int](kind)
		perm := rand.New(rand.NewSource(7)).Perm(100)
		for _, v := range perm {
			m.Put(key1(int64(v)), v)
		}
		var got []int64
		m.Range(func(k relation.Tuple, _ int) bool {
			got = append(got, k.MustGet("k").Int())
			return true
		})
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("%s: Range order not sorted: %v", kind, got[:10])
		}
		if len(got) != 100 {
			t.Errorf("%s: Range visited %d", kind, len(got))
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	for _, kind := range AllKinds() {
		m := New[int](kind)
		for i := int64(0); i < 10; i++ {
			m.Put(key1(i), int(i))
		}
		count := 0
		m.Range(func(relation.Tuple, int) bool {
			count++
			return count < 3
		})
		if count != 3 {
			t.Errorf("%s: early stop visited %d entries, want 3", kind, count)
		}
	}
}

func TestDListHandles(t *testing.T) {
	l := NewDList[int]()
	e1 := l.PutEntry(key1(1), 10)
	e2 := l.PutEntry(key1(2), 20)
	l.RemoveEntry(e1)
	if l.Len() != 1 {
		t.Fatalf("Len after handle removal = %d", l.Len())
	}
	if _, ok := l.Get(key1(1)); ok {
		t.Errorf("entry still reachable after RemoveEntry")
	}
	// Removing twice is a no-op.
	l.RemoveEntry(e1)
	if l.Len() != 1 {
		t.Errorf("double RemoveEntry changed Len")
	}
	// PutEntry on existing key returns the same entry.
	e2b := l.PutEntry(key1(2), 21)
	if e2b != e2 {
		t.Errorf("PutEntry allocated a new entry for an existing key")
	}
	if v, _ := l.Get(key1(2)); v != 21 {
		t.Errorf("PutEntry did not update value")
	}
}

func TestDListDeleteDuringRange(t *testing.T) {
	l := NewDList[int]()
	for i := int64(0); i < 5; i++ {
		l.Put(key1(i), int(i))
	}
	l.Range(func(k relation.Tuple, _ int) bool {
		l.Delete(k)
		return true
	})
	if l.Len() != 0 {
		t.Errorf("Len after delete-during-range = %d", l.Len())
	}
}

func TestAVLInvariantUnderChurn(t *testing.T) {
	tr := NewAVL[int]()
	rnd := rand.New(rand.NewSource(9))
	live := make(map[int64]bool)
	for i := 0; i < 2000; i++ {
		k := int64(rnd.Intn(300))
		if rnd.Intn(2) == 0 {
			tr.Put(key1(k), int(k))
			live[k] = true
		} else {
			tr.Delete(key1(k))
			delete(live, k)
		}
		if i%97 == 0 && !tr.checkInvariant() {
			t.Fatalf("AVL invariant broken at step %d", i)
		}
	}
	if tr.Len() != len(live) {
		t.Errorf("AVL Len = %d, want %d", tr.Len(), len(live))
	}
	if !tr.checkInvariant() {
		t.Errorf("AVL invariant broken at end")
	}
}

func TestAVLMinMax(t *testing.T) {
	tr := NewAVL[int]()
	if _, _, ok := tr.Min(); ok {
		t.Errorf("Min on empty reported ok")
	}
	for _, v := range []int64{5, 1, 9, 3} {
		tr.Put(key1(v), int(v))
	}
	if k, _, _ := tr.Min(); k.MustGet("k").Int() != 1 {
		t.Errorf("Min = %v", k)
	}
	if k, _, _ := tr.Max(); k.MustGet("k").Int() != 9 {
		t.Errorf("Max = %v", k)
	}
}

func TestVectorNegativeAndGrowth(t *testing.T) {
	v := NewVector[int]()
	v.Put(key1(10), 1)
	v.Put(key1(-5), 2) // grow downward
	v.Put(key1(30), 3) // grow upward
	for _, c := range []struct {
		k int64
		w int
	}{{10, 1}, {-5, 2}, {30, 3}} {
		if got, ok := v.Get(key1(c.k)); !ok || got != c.w {
			t.Errorf("Get(%d) = %d, %v", c.k, got, ok)
		}
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
	var keys []int64
	v.Range(func(k relation.Tuple, _ int) bool {
		keys = append(keys, k.MustGet("k").Int())
		return true
	})
	want := []int64{-5, 10, 30}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range keys = %v, want %v", keys, want)
		}
	}
}

func TestVectorRejectsBadKeys(t *testing.T) {
	v := NewVector[int]()
	for _, bad := range []relation.Tuple{strKey("x"), key2(1, 2)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("vector accepted bad key %v", bad)
				}
			}()
			v.Put(bad, 0)
		}()
	}
}

func TestVectorSpanLimit(t *testing.T) {
	v := NewVector[int]()
	v.Put(key1(0), 1)
	defer func() {
		if recover() == nil {
			t.Errorf("vector accepted enormous span")
		}
	}()
	v.Put(key1(1<<40), 2)
}

func TestCostModelShapes(t *testing.T) {
	// The model must reproduce the complexity ordering the planner relies
	// on: at large n, lookup on lists ≫ trees ≫ hash/vector.
	n := 100000.0
	if !(LookupCost(DListKind, n) > LookupCost(AVLKind, n)) {
		t.Errorf("list lookup not more expensive than tree at n=%v", n)
	}
	if !(LookupCost(AVLKind, n) > LookupCost(HTableKind, n)) {
		t.Errorf("tree lookup not more expensive than hash at n=%v", n)
	}
	if !(LookupCost(HTableKind, n) >= LookupCost(VectorKind, n)) {
		t.Errorf("hash lookup cheaper than vector")
	}
	// Handle-based delete beats scanning delete on dlist.
	if !(HandleDeleteCost(DListKind, n) < DeleteCost(DListKind, n)) {
		t.Errorf("handle delete not cheaper than scan delete")
	}
	// Costs are defined (>0) at n = 0 for every kind.
	for _, k := range AllKinds() {
		for _, f := range []func(Kind, float64) float64{LookupCost, ScanCost, InsertCost, DeleteCost, HandleDeleteCost} {
			if c := f(k, 0); c <= 0 {
				t.Errorf("%s: zero-size cost = %v", k, c)
			}
		}
	}
}

func TestNewPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("New on unknown kind did not panic")
		}
	}()
	New[int](Kind("bogus"))
}

func TestKindPredicates(t *testing.T) {
	if !Kind("avl").Valid() || Kind("nope").Valid() {
		t.Errorf("Valid wrong")
	}
	if !VectorKind.IntKeyedOnly() || HTableKind.IntKeyedOnly() {
		t.Errorf("IntKeyedOnly wrong")
	}
	if !AVLKind.Ordered() || DListKind.Ordered() {
		t.Errorf("Ordered wrong")
	}
}
