package dstruct

import (
	"testing"

	"repro/internal/relation"
)

// TestAppendEntriesMatchesRange checks, for every structure kind, that bulk
// extraction yields exactly the entries Range visits, in the same order —
// the contract the vectorized scan stage depends on for deterministic
// differential comparison against the row-at-a-time tiers.
func TestAppendEntriesMatchesRange(t *testing.T) {
	for _, kind := range []Kind{AVLKind, DListKind, SListKind, HTableKind, SkipListKind, SortedArrKind, VectorKind} {
		t.Run(string(kind), func(t *testing.T) {
			m := New[int](kind)
			if _, ok := m.(Entries[int]); !ok {
				t.Fatalf("%s does not implement the Entries fast path", kind)
			}
			for i := 0; i < 37; i++ {
				m.Put(relation.NewTuple(relation.BindInt("k", int64(i*3%37))), i)
			}
			var wantK []relation.Tuple
			var wantV []int
			m.Range(func(k relation.Tuple, v int) bool {
				wantK = append(wantK, k)
				wantV = append(wantV, v)
				return true
			})
			ks, vs := AppendEntries[int](m, nil, nil)
			if len(ks) != len(wantK) || len(vs) != len(wantV) {
				t.Fatalf("extracted %d/%d entries, Range saw %d", len(ks), len(vs), len(wantK))
			}
			for i := range ks {
				if !ks[i].Equal(wantK[i]) || vs[i] != wantV[i] {
					t.Fatalf("entry %d: got (%v,%d), Range saw (%v,%d)", i, ks[i], vs[i], wantK[i], wantV[i])
				}
			}
			// Appending to non-empty slices must extend, not clobber.
			ks2, vs2 := AppendEntries[int](m, ks[:1:1], vs[:1:1])
			if len(ks2) != len(ks)+1 || !ks2[0].Equal(ks[0]) || vs2[0] != vs[0] {
				t.Fatal("AppendEntries must append after existing entries")
			}
		})
	}
}

// The generic fallback must work for maps without the capability.
type rangeOnlyMap struct{ Map[int] }

func TestAppendEntriesFallback(t *testing.T) {
	inner := New[int](SListKind)
	inner.Put(relation.NewTuple(relation.BindInt("k", 1)), 10)
	inner.Put(relation.NewTuple(relation.BindInt("k", 2)), 20)
	m := rangeOnlyMap{inner}
	ks, vs := AppendEntries[int](m, nil, nil)
	if len(ks) != 2 || len(vs) != 2 {
		t.Fatalf("fallback extracted %d entries, want 2", len(ks))
	}
}
