// Package harness drives the fault-injection plane through the public
// engine and asserts the atomicity contract of every mutation: a mutation
// that fails — because a data structure returned an injected error or
// panicked outright — leaves the relation exactly as it was, well-formed
// (CheckWF), and representing the same abstract relation α as before the
// mutation. The harness runs three regimes over a corpus of paper
// decompositions: exhaustive (a fault at every reachable step of every
// mutation, in both error and panic mode), randomized (seed-driven op/fault
// schedules against a mirror oracle), and concurrent (a sharded engine
// hammered from several goroutines while faults are armed, for the race
// detector).
package harness

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/faultinject"
	"repro/internal/fd"
	"repro/internal/paperex"
	"repro/internal/relation"
)

// A Mutator is the mutation surface the corpus closures drive. Both the
// single-threaded *core.Relation and the MVCC *core.SyncRelation satisfy
// it, so every corpus case exercises the undo-log rollback path and the
// copy-on-write drop path with the same operations.
type Mutator interface {
	Insert(t relation.Tuple) error
	Remove(pat relation.Tuple) (int, error)
	Update(s, u relation.Tuple) (int, error)
}

// A Mutation is one operation under test; Run returns whatever the public
// API returned.
type Mutation struct {
	Name string
	Run  func(r Mutator) error
}

// A Case is one corpus entry: how to build the relation, what to seed it
// with, which mutations to exhaust, and how to generate random operations.
type Case struct {
	Name   string
	Spec   func() *core.Spec
	Decomp func() *decomp.Decomp
	Seed   []relation.Tuple
	Muts   []Mutation

	// Gen produces a random full tuple and Key names the update-pattern
	// columns, for the randomized regime.
	Gen func(rnd *rand.Rand) relation.Tuple
	Key []string
}

func intCols(names ...string) []core.ColDef {
	defs := make([]core.ColDef, len(names))
	for i, n := range names {
		defs[i] = core.ColDef{Name: n, Type: core.IntCol}
	}
	return defs
}

func bi(col string, v int64) relation.Binding { return relation.BindInt(col, v) }

// schedulerCase is Figure 2(a): the shared-node scheduler decomposition.
func schedulerCase() Case {
	seed := []relation.Tuple{
		paperex.SchedulerTuple(1, 1, paperex.StateS, 7),
		paperex.SchedulerTuple(1, 2, paperex.StateR, 4),
		paperex.SchedulerTuple(2, 1, paperex.StateS, 5),
	}
	return Case{
		Name: "scheduler",
		Spec: func() *core.Spec {
			return &core.Spec{Name: "processes", Columns: intCols("ns", "pid", "state", "cpu"), FDs: paperex.SchedulerFDs()}
		},
		Decomp: paperex.SchedulerDecomp,
		Seed:   seed,
		Muts: []Mutation{
			{"insert", func(r Mutator) error {
				return r.Insert(paperex.SchedulerTuple(3, 1, paperex.StateR, 2))
			}},
			{"remove-point", func(r Mutator) error {
				_, err := r.Remove(seed[0])
				return err
			}},
			{"remove-pattern", func(r Mutator) error {
				_, err := r.Remove(relation.NewTuple(bi("ns", 1)))
				return err
			}},
			{"update-inplace", func(r Mutator) error {
				_, err := r.Update(relation.NewTuple(bi("ns", 1), bi("pid", 1)), relation.NewTuple(bi("cpu", 9)))
				return err
			}},
			{"update-replace", func(r Mutator) error {
				_, err := r.Update(relation.NewTuple(bi("ns", 1), bi("pid", 1)), relation.NewTuple(bi("state", paperex.StateR)))
				return err
			}},
		},
		Gen: func(rnd *rand.Rand) relation.Tuple {
			return paperex.SchedulerTuple(rnd.Int63n(3), rnd.Int63n(3), rnd.Int63n(2), rnd.Int63n(4))
		},
		Key: []string{"ns", "pid"},
	}
}

// graphCase builds one corpus entry per Figure 12 decomposition shape:
// decomposition 1 (a chain), 5 (a shared unit under two access paths), and
// 9 (unshared left/right units).
func graphCase(name string, d func() *decomp.Decomp) Case {
	seed := []relation.Tuple{
		paperex.EdgeTuple(1, 2, 10),
		paperex.EdgeTuple(1, 3, 11),
		paperex.EdgeTuple(2, 3, 12),
	}
	return Case{
		Name: name,
		Spec: func() *core.Spec {
			return &core.Spec{Name: "edges", Columns: intCols("src", "dst", "weight"), FDs: paperex.GraphFDs()}
		},
		Decomp: d,
		Seed:   seed,
		Muts: []Mutation{
			{"insert", func(r Mutator) error {
				return r.Insert(paperex.EdgeTuple(3, 1, 13))
			}},
			{"remove-point", func(r Mutator) error {
				_, err := r.Remove(seed[0])
				return err
			}},
			{"remove-pattern", func(r Mutator) error {
				_, err := r.Remove(relation.NewTuple(bi("src", 1)))
				return err
			}},
			{"update-inplace", func(r Mutator) error {
				_, err := r.Update(relation.NewTuple(bi("src", 2), bi("dst", 3)), relation.NewTuple(bi("weight", 99)))
				return err
			}},
		},
		Gen: func(rnd *rand.Rand) relation.Tuple {
			return paperex.EdgeTuple(rnd.Int63n(3), rnd.Int63n(3), rnd.Int63n(5))
		},
		Key: []string{"src", "dst"},
	}
}

// deepCase is the four-level chain over {a,b,c,d} with abc → d: the longest
// mutation walks in the corpus (most injection steps per operation).
func deepCase() Case {
	dcmp := func() *decomp.Decomp {
		return decomp.MustNew([]decomp.Binding{
			decomp.Let("w", []string{"a", "b", "c"}, []string{"d"}, decomp.U("d")),
			decomp.Let("v", []string{"a", "b"}, []string{"c", "d"}, decomp.M(dstruct.AVLKind, "w", "c")),
			decomp.Let("u", []string{"a"}, []string{"b", "c", "d"}, decomp.M(dstruct.SListKind, "v", "b")),
			decomp.Let("x", nil, []string{"a", "b", "c", "d"}, decomp.M(dstruct.HTableKind, "u", "a")),
		}, "x")
	}
	tup := func(a, b, c, d int64) relation.Tuple {
		return relation.NewTuple(bi("a", a), bi("b", b), bi("c", c), bi("d", d))
	}
	seed := []relation.Tuple{tup(1, 1, 1, 5), tup(1, 1, 2, 6), tup(1, 2, 1, 7), tup(2, 1, 1, 8)}
	return Case{
		Name: "deep-chain",
		Spec: func() *core.Spec {
			return &core.Spec{
				Name: "deep", Columns: intCols("a", "b", "c", "d"),
				FDs: fd.NewSet(fd.FD{From: relation.NewCols("a", "b", "c"), To: relation.NewCols("d")}),
			}
		},
		Decomp: dcmp,
		Seed:   seed,
		Muts: []Mutation{
			{"insert", func(r Mutator) error { return r.Insert(tup(2, 2, 2, 9)) }},
			{"remove-point", func(r Mutator) error {
				_, err := r.Remove(seed[0])
				return err
			}},
			{"remove-pattern", func(r Mutator) error {
				_, err := r.Remove(relation.NewTuple(bi("a", 1), bi("b", 1)))
				return err
			}},
			{"update-inplace", func(r Mutator) error {
				_, err := r.Update(relation.NewTuple(bi("a", 1), bi("b", 1), bi("c", 1)), relation.NewTuple(bi("d", 42)))
				return err
			}},
		},
		Gen: func(rnd *rand.Rand) relation.Tuple {
			return tup(rnd.Int63n(3), rnd.Int63n(3), rnd.Int63n(3), rnd.Int63n(3))
		},
		Key: []string{"a", "b", "c"},
	}
}

// twoKeyCase has two candidate keys (k1 → k2,v and k2 → k1,v) and a shared
// unit reached through both key paths — the shape where a remove+reinsert
// update can fail half-way and must compensate.
func twoKeyCase() Case {
	dcmp := func() *decomp.Decomp {
		return decomp.MustNew([]decomp.Binding{
			decomp.Let("w", []string{"k1", "k2"}, []string{"v"}, decomp.U("v")),
			decomp.Let("y", []string{"k1"}, []string{"k2", "v"}, decomp.M(dstruct.HTableKind, "w", "k2")),
			decomp.Let("z", []string{"k2"}, []string{"k1", "v"}, decomp.M(dstruct.HTableKind, "w", "k1")),
			decomp.Let("x", nil, []string{"k1", "k2", "v"},
				decomp.J(decomp.M(dstruct.HTableKind, "y", "k1"), decomp.M(dstruct.HTableKind, "z", "k2"))),
		}, "x")
	}
	tup := func(k1, k2, v int64) relation.Tuple {
		return relation.NewTuple(bi("k1", k1), bi("k2", k2), bi("v", v))
	}
	seed := []relation.Tuple{tup(1, 1, 10), tup(2, 5, 20)}
	return Case{
		Name: "two-key",
		Spec: func() *core.Spec {
			return &core.Spec{
				Name: "twokey", Columns: intCols("k1", "k2", "v"),
				FDs: fd.NewSet(
					fd.FD{From: relation.NewCols("k1"), To: relation.NewCols("k2", "v")},
					fd.FD{From: relation.NewCols("k2"), To: relation.NewCols("k1", "v")},
				),
			}
		},
		Decomp: dcmp,
		Seed:   seed,
		Muts: []Mutation{
			{"insert", func(r Mutator) error { return r.Insert(tup(3, 7, 30)) }},
			{"remove-point", func(r Mutator) error {
				_, err := r.Remove(seed[0])
				return err
			}},
			{"update-replace", func(r Mutator) error {
				_, err := r.Update(relation.NewTuple(bi("k1", 1)), relation.NewTuple(bi("k2", 9)))
				return err
			}},
		},
		Gen: func(rnd *rand.Rand) relation.Tuple {
			k := rnd.Int63n(4)
			return tup(k, k+10, rnd.Int63n(5))
		},
		Key: []string{"k1"},
	}
}

// Cases is the harness corpus.
func Cases() []Case {
	return []Case{
		schedulerCase(),
		graphCase("graph-1", paperex.GraphDecomp1),
		graphCase("graph-5", paperex.GraphDecomp5),
		graphCase("graph-9", paperex.GraphDecomp9),
		deepCase(),
		twoKeyCase(),
	}
}

// build constructs and seeds the case's relation. The fault plane must
// already be installed (and disarmed) so the instance's data structures
// carry live injection points.
func (c Case) build(t *testing.T) *core.Relation {
	t.Helper()
	r, err := core.New(c.Spec(), c.Decomp())
	if err != nil {
		t.Fatalf("%s: build: %v", c.Name, err)
	}
	// The harness feeds arbitrary generated tuples; dynamic FD validation
	// keeps Lemma 4's precondition (the engine's default trusts the client).
	r.CheckFDs = true
	for _, tup := range c.Seed {
		if err := r.Insert(tup); err != nil {
			t.Fatalf("%s: seed %v: %v", c.Name, tup, err)
		}
	}
	return r
}

// Exhaust injects a fault at every reachable step of every mutation of the
// case, in both modes, and asserts atomicity: the failed mutation surfaced
// an error, the instance stayed well-formed (CheckWF), α equals the
// pre-mutation oracle, the relation is not poisoned, and the mutation
// succeeds when retried.
func Exhaust(t *testing.T, p *faultinject.Plane, c Case) {
	for _, mu := range c.Muts {
		t.Run(mu.Name, func(t *testing.T) {
			tr := c.build(t)
			p.Reset()
			p.Trace(true)
			if err := mu.Run(tr); err != nil {
				t.Fatalf("trace run: %v", err)
			}
			pts := p.Points()
			p.Trace(false)
			p.Reset()
			if len(pts) == 0 {
				t.Fatal("mutation passed no injection points")
			}
			for step := 1; step <= len(pts); step++ {
				for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
					if mode == faultinject.Error && !pts[step-1].CanError {
						continue
					}
					r := c.build(t)
					oracle := r.Instance().Relation()
					p.Reset()
					p.Arm(int64(step), mode)
					err := mu.Run(r)
					fired := len(p.Fired()) > 0
					p.Disarm()
					if !fired {
						t.Fatalf("step %d/%v: fault did not fire", step, mode)
					}
					if err == nil {
						t.Fatalf("step %d/%v: injected fault surfaced as success", step, mode)
					}
					if r.Poisoned() {
						t.Fatalf("step %d/%v: single fault poisoned the relation", step, mode)
					}
					if werr := r.Instance().CheckWF(); werr != nil {
						t.Fatalf("step %d/%v: not well-formed after rollback: %v", step, mode, werr)
					}
					if !r.Instance().Relation().Equal(oracle) {
						t.Fatalf("step %d/%v: α changed across failed %s", step, mode, mu.Name)
					}
					if rerr := mu.Run(r); rerr != nil {
						t.Fatalf("step %d/%v: retry: %v", step, mode, rerr)
					}
					if werr := r.Instance().CheckWF(); werr != nil {
						t.Fatalf("step %d/%v: retry left instance ill-formed: %v", step, mode, werr)
					}
				}
			}
		})
	}
}

// ExhaustCOW runs the exhaustive regime against the MVCC tier: the case's
// relation wrapped in core.NewSync, so every mutation builds a copy-on-write
// fork and publishes it atomically. The atomicity contract sharpens to
// pointer identity: after a failed mutation the published snapshot must be
// EXACTLY the pre-mutation *core.Relation — always either the old version or
// the (never-published) new one, never a torn hybrid — with the version
// counter unchanged and the published instance still well-formed with α
// equal to the pre-mutation oracle. The clone and link steps of the COW
// spine walk are themselves injection points (instance.cow.clone,
// instance.cow.link), so faults land inside fork construction as well as
// inside the underlying data structures.
func ExhaustCOW(t *testing.T, p *faultinject.Plane, c Case) {
	for _, mu := range c.Muts {
		t.Run(mu.Name, func(t *testing.T) {
			tr := core.NewSync(c.build(t))
			p.Reset()
			p.Trace(true)
			if err := mu.Run(tr); err != nil {
				t.Fatalf("trace run: %v", err)
			}
			pts := p.Points()
			p.Trace(false)
			p.Reset()
			if len(pts) == 0 {
				t.Fatal("mutation passed no injection points")
			}
			cow := 0
			for _, pt := range pts {
				if strings.HasPrefix(pt.Site, "instance.cow.") {
					cow++
				}
			}
			if cow == 0 {
				t.Fatal("mutation passed no instance.cow.* points — injection is not reaching the copy-on-write fork path")
			}
			for step := 1; step <= len(pts); step++ {
				for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
					if mode == faultinject.Error && !pts[step-1].CanError {
						continue
					}
					s := core.NewSync(c.build(t))
					pre := s.Snapshot()
					preVer := s.Version()
					oracle := pre.Instance().Relation()
					p.Reset()
					p.Arm(int64(step), mode)
					err := mu.Run(s)
					fired := len(p.Fired()) > 0
					p.Disarm()
					if !fired {
						t.Fatalf("step %d/%v: fault did not fire", step, mode)
					}
					if err == nil {
						t.Fatalf("step %d/%v: injected fault surfaced as success", step, mode)
					}
					// The torn-hybrid check: failure drops the fork before
					// publication, so the handle must be the same instance,
					// pointer-identical, at the same version.
					if got := s.Snapshot(); got != pre {
						t.Fatalf("step %d/%v: failed %s published a new version", step, mode, mu.Name)
					}
					if got := s.Version(); got != preVer {
						t.Fatalf("step %d/%v: version advanced %d -> %d across failed %s", step, mode, preVer, got, mu.Name)
					}
					if s.Poisoned() {
						t.Fatalf("step %d/%v: fault poisoned the MVCC tier (the dropped fork should absorb it)", step, mode)
					}
					if werr := pre.Instance().CheckWF(); werr != nil {
						t.Fatalf("step %d/%v: published instance ill-formed after drop: %v", step, mode, werr)
					}
					if !pre.Instance().Relation().Equal(oracle) {
						t.Fatalf("step %d/%v: α of the published snapshot changed across failed %s", step, mode, mu.Name)
					}
					if rerr := mu.Run(s); rerr != nil {
						t.Fatalf("step %d/%v: retry: %v", step, mode, rerr)
					}
					post := s.Snapshot()
					if post == pre {
						t.Fatalf("step %d/%v: successful retry published no new version", step, mode)
					}
					if werr := post.Instance().CheckWF(); werr != nil {
						t.Fatalf("step %d/%v: retry left published instance ill-formed: %v", step, mode, werr)
					}
				}
			}
		})
	}
}

// Randomized runs a seed-driven schedule of random operations with faults
// armed at random steps, against a mirror relation as oracle: an operation
// that returns an error must leave α unchanged; one that succeeds must
// agree with the mirror's own semantics.
func Randomized(t *testing.T, p *faultinject.Plane, c Case, seed int64, ops int) {
	rnd := rand.New(rand.NewSource(seed))
	r := c.build(t)
	oracle := relation.Empty(c.Spec().Cols())
	for _, tup := range c.Seed {
		_ = oracle.Insert(tup)
	}
	keyCols := relation.NewCols(c.Key...)
	for i := 0; i < ops; i++ {
		armed := rnd.Intn(2) == 0
		if armed {
			mode := faultinject.Error
			if rnd.Intn(2) == 0 {
				mode = faultinject.Panic
			}
			p.Reset()
			p.Arm(int64(1+rnd.Intn(60)), mode)
		}
		var err error
		tup := c.Gen(rnd)
		switch rnd.Intn(3) {
		case 0:
			err = r.Insert(tup)
			if err == nil {
				_ = oracle.Insert(tup)
			}
		case 1:
			if _, err = r.Remove(tup); err == nil {
				oracle.Remove(tup)
			}
		case 2:
			s := tup.Project(keyCols)
			u := relation.NewTuple()
			for _, b := range tup.Bindings() {
				if _, bound := s.Get(b.Col); !bound {
					u = relation.NewTuple(b)
					break
				}
			}
			var n int
			n, err = r.Update(s, u)
			if err == nil && n > 0 {
				oracle.Update(s, u)
			}
		}
		p.Disarm()
		if err != nil {
			if r.Poisoned() {
				t.Fatalf("%s seed %d op %d: poisoned by a single fault", c.Name, seed, i)
			}
			if werr := r.Instance().CheckWF(); werr != nil {
				t.Fatalf("%s seed %d op %d: ill-formed after error %v: %v", c.Name, seed, i, err, werr)
			}
		}
		if !r.Instance().Relation().Equal(oracle) {
			t.Fatalf("%s seed %d op %d: α diverged from oracle after %v (err=%v)", c.Name, seed, i, tup, err)
		}
	}
	if werr := r.Instance().CheckWF(); werr != nil {
		t.Fatalf("%s seed %d: final instance ill-formed: %v", c.Name, seed, werr)
	}
}

// Concurrent hammers a sharded scheduler engine from several goroutines
// while a background loop keeps arming faults at near-future steps. Each
// worker owns one ns value and mirrors its own slice of the relation; when
// the dust settles the engine must agree with every mirror — unless a
// double fault poisoned a shard, in which case the engine must have refused
// every subsequent mutation on it. Run under -race this exercises the
// containment paths (fan-out recover, lock release on panic) for data
// races.
func Concurrent(t *testing.T, p *faultinject.Plane, workers, ops int) {
	spec := &core.Spec{Name: "processes", Columns: intCols("ns", "pid", "state", "cpu"), FDs: paperex.SchedulerFDs()}
	sr, err := core.NewSharded(spec, paperex.SchedulerDecomp(),
		core.ShardOptions{ShardKey: []string{"ns", "pid"}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sr.NumShards(); i++ {
		sr.Shard(i).CheckFDs = true
	}
	stop := make(chan struct{})
	var armWG sync.WaitGroup
	armWG.Add(1)
	go func() {
		defer armWG.Done()
		rnd := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			mode := faultinject.Error
			if rnd.Intn(2) == 0 {
				mode = faultinject.Panic
			}
			p.Arm(p.Steps()+int64(1+rnd.Intn(40)), mode)
			time.Sleep(20 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	mirrors := make([]map[string]relation.Tuple, workers)
	for g := 0; g < workers; g++ {
		mirrors[g] = make(map[string]relation.Tuple)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(100 + g)))
			mine := mirrors[g]
			for i := 0; i < ops; i++ {
				pid := rnd.Int63n(8)
				key := relation.NewTuple(relation.BindInt("ns", int64(g)), relation.BindInt("pid", pid))
				switch rnd.Intn(3) {
				case 0:
					tup := paperex.SchedulerTuple(int64(g), pid, rnd.Int63n(2), rnd.Int63n(4))
					if err := sr.Insert(tup); err == nil {
						mine[key.Key()] = tup
					}
				case 1:
					if n, err := sr.Remove(key); err == nil && n > 0 {
						delete(mine, key.Key())
					}
				case 2:
					u := relation.NewTuple(relation.BindInt("cpu", rnd.Int63n(4)))
					if n, err := sr.Update(key, u); err == nil && n > 0 {
						if cur, ok := mine[key.Key()]; ok {
							mine[key.Key()] = cur.Merge(u)
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	armWG.Wait()
	p.Disarm()
	if sr.Poisoned() {
		// A panic landed inside a rollback: the engine's promise is
		// degradation to read-only, not state equality. Check exactly that.
		if err := sr.Insert(paperex.SchedulerTuple(999, 1, paperex.StateS, 1)); err == nil {
			t.Fatal("poisoned engine accepted a mutation")
		}
		t.Logf("engine poisoned by a double fault; mutation refusal verified")
		return
	}
	if err := sr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent schedule: %v", err)
	}
	for g := 0; g < workers; g++ {
		got, err := sr.Query(relation.NewTuple(relation.BindInt("ns", int64(g))), []string{"ns", "pid", "state", "cpu"})
		if err != nil {
			t.Fatalf("final query ns=%d: %v", g, err)
		}
		if len(got) != len(mirrors[g]) {
			t.Fatalf("ns=%d: engine has %d tuples, mirror %d", g, len(got), len(mirrors[g]))
		}
		for _, tup := range got {
			key := tup.Project(relation.NewCols("ns", "pid")).Key()
			want, ok := mirrors[g][key]
			if !ok || !tup.Equal(want.Project(tup.Dom())) {
				t.Fatalf("ns=%d: engine tuple %v disagrees with mirror %v", g, tup, want)
			}
		}
	}
}
