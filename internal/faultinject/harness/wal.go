package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/relation"
	"repro/internal/wal"
)

// This file extends the harness to the durable tier: ExhaustWAL injects a
// fault at every reachable step of every mutation of a write-ahead-logged
// relation — data-structure steps, fork steps, and the WAL's own append/
// fsync steps — and asserts the durability contract against an
// acknowledged-prefix oracle:
//
//   - Error mode models a failing substrate under a live process. The
//     mutation must surface the error, the published state must be
//     exactly the pre-mutation α (fork dropped, failed append truncated
//     away), a retry must succeed, and a clean close + reopen must
//     recover exactly the post-mutation state.
//
//   - Panic mode models a crash (kill) at the step. The harness abandons
//     the handle mid-flight, reopens the directory, and asserts the
//     recovered α is a prefix of acknowledgement: either the
//     pre-mutation state (the record never became readable) or the
//     post-mutation state (the record was fully written — a crash after
//     a complete but unacknowledged record may legitimately replay).
//     Nothing else is acceptable: no torn tuples, no partial deltas, and
//     the recovered instance passes CheckWF. Re-running the mutation
//     must converge to the post state.
//
// ExhaustWALCheckpoint and ExhaustWALRecovery run the same two regimes
// over the checkpoint path (snapshot write + log rotation) and over
// recovery itself (durable.Open replaying a prepared directory), the
// latter being the regression harness for replay-through-COW: a fault
// mid-replay must fail Open loudly and leave nothing behind that a
// retried Open would trip over.

// openWAL opens (or creates) the case's durable relation in dir. shards
// == 0 opens the sync tier; > 0 the sharded tier on the case's key
// columns with a single worker, keeping fan-out step order deterministic
// for the step-counting plane.
func openWAL(t *testing.T, dir string, c Case, shards int) *core.DurableRelation {
	t.Helper()
	d, err := tryOpenWAL(dir, c, shards)
	if err != nil {
		t.Fatalf("%s: durable open: %v", c.Name, err)
	}
	return d
}

func tryOpenWAL(dir string, c Case, shards int) (*core.DurableRelation, error) {
	opts := durable.Options{
		Create:   true,
		Policy:   wal.SyncAlways,
		CheckFDs: true,
	}
	if shards > 0 {
		opts.Shards = shards
		opts.ShardKey = c.Key
		opts.Workers = 1
	}
	return durable.Open(dir, c.Spec(), c.Decomp(), opts)
}

// seedWAL acknowledges the case's seed tuples through the durable engine.
func seedWAL(t *testing.T, d *core.DurableRelation, c Case) {
	t.Helper()
	for _, tup := range c.Seed {
		if err := d.Insert(tup); err != nil {
			t.Fatalf("%s: seed %v: %v", c.Name, tup, err)
		}
	}
}

// alphaWAL reads the durable relation's abstraction α.
func alphaWAL(t *testing.T, d *core.DurableRelation) *relation.Relation {
	t.Helper()
	ts, err := d.All()
	if err != nil {
		t.Fatalf("reading α: %v", err)
	}
	rr := relation.Empty(d.Spec().Cols())
	for _, tup := range ts {
		if err := rr.Insert(tup); err != nil {
			t.Fatalf("α tuple %v: %v", tup, err)
		}
	}
	return rr
}

// runContained runs f, converting a panic into (error, panicked=true).
func runContained(f func() error) (err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			panicked = true
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return f(), false
}

// walOracles computes the α before and after the mutation on a plain
// in-memory relation.
func walOracles(t *testing.T, c Case, mu Mutation) (pre, post *relation.Relation) {
	t.Helper()
	r := c.build(t)
	pre = r.Instance().Relation().Clone()
	if err := mu.Run(r); err != nil {
		t.Fatalf("%s: oracle run of %s: %v", c.Name, mu.Name, err)
	}
	post = r.Instance().Relation()
	return pre, post
}

// ExhaustWAL runs the exhaustive kill-point regime over every mutation of
// the case on the durable tier.
func ExhaustWAL(t *testing.T, p *faultinject.Plane, c Case, shards int) {
	for _, mu := range c.Muts {
		if shards > 0 && !strings.Contains(mu.Name, "point") && !strings.Contains(mu.Name, "insert") && !strings.Contains(mu.Name, "update") {
			// Fan-out mutations (pattern removes not binding the shard
			// key) are atomic per cell, not across cells: a fault in one
			// shard leaves earlier shards' commits published, so the
			// all-or-nothing oracle below does not apply. Routed
			// mutations cover the sharded durable write path.
			continue
		}
		t.Run(mu.Name, func(t *testing.T) {
			// Trace the mutation's injection points on a clean run.
			dir := t.TempDir()
			d := openWAL(t, dir, c, shards)
			seedWAL(t, d, c)
			p.Reset()
			p.Trace(true)
			if err := mu.Run(d); err != nil {
				t.Fatalf("trace run: %v", err)
			}
			pts := p.Points()
			p.Trace(false)
			p.Reset()
			if err := d.Close(); err != nil {
				t.Fatalf("trace close: %v", err)
			}
			if len(pts) == 0 {
				t.Fatal("mutation passed no injection points")
			}
			walPoints := 0
			for _, pt := range pts {
				if strings.HasPrefix(pt.Site, "wal.") {
					walPoints++
				}
			}
			if walPoints == 0 {
				t.Fatal("mutation passed no wal.* points — the durable tier is not logging it")
			}

			pre, post := walOracles(t, c, mu)

			for step := 1; step <= len(pts); step++ {
				for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
					if mode == faultinject.Error && !pts[step-1].CanError {
						continue
					}
					dir := t.TempDir()
					d := openWAL(t, dir, c, shards)
					seedWAL(t, d, c)
					p.Reset()
					p.Arm(int64(step), mode)
					err, panicked := runContained(func() error { return mu.Run(d) })
					fired := len(p.Fired()) > 0
					p.Disarm()
					if !fired {
						t.Fatalf("step %d/%v: fault did not fire", step, mode)
					}
					if err == nil {
						t.Fatalf("step %d/%v: injected fault surfaced as success", step, mode)
					}

					if mode == faultinject.Error {
						// Live-failure contract: nothing published, nothing
						// logged, retry works, recovery agrees.
						if !alphaWAL(t, d).Equal(pre) {
							t.Fatalf("step %d/error: failed %s changed the published α", step, mu.Name)
						}
						if ierr := d.CheckInvariants(); ierr != nil {
							t.Fatalf("step %d/error: invariants after failed %s: %v", step, mu.Name, ierr)
						}
						if rerr := mu.Run(d); rerr != nil {
							t.Fatalf("step %d/error: retry: %v", step, rerr)
						}
						if !alphaWAL(t, d).Equal(post) {
							t.Fatalf("step %d/error: retried %s did not reach the post state", step, mu.Name)
						}
						if cerr := d.Close(); cerr != nil {
							t.Fatalf("step %d/error: close: %v", step, cerr)
						}
						d2 := openWAL(t, dir, c, shards)
						if !alphaWAL(t, d2).Equal(post) {
							t.Fatalf("step %d/error: recovery disagrees with the acknowledged state", step)
						}
						d2.Close()
						continue
					}

					// Kill contract. The handle is dead (possibly wedged);
					// Close only releases file handles — it cannot repair or
					// extend the on-disk tail the "crash" left behind.
					_ = panicked
					d.Close()
					d2, oerr := tryOpenWAL(dir, c, shards)
					if oerr != nil {
						t.Fatalf("step %d/panic: reopen after kill: %v", step, oerr)
					}
					got := alphaWAL(t, d2)
					if !got.Equal(pre) && !got.Equal(post) {
						t.Fatalf("step %d/panic: recovered α is neither the pre- nor the post-%s state:\n%v", step, mu.Name, got)
					}
					if ierr := d2.CheckInvariants(); ierr != nil {
						t.Fatalf("step %d/panic: invariants after recovery: %v", step, ierr)
					}
					if rerr := mu.Run(d2); rerr != nil {
						t.Fatalf("step %d/panic: re-running %s after recovery: %v", step, mu.Name, rerr)
					}
					if !alphaWAL(t, d2).Equal(post) {
						t.Fatalf("step %d/panic: re-run did not converge to the post state", step)
					}
					if cerr := d2.Close(); cerr != nil {
						t.Fatalf("step %d/panic: close after recovery: %v", step, cerr)
					}
				}
			}
		})
	}
}

// ExhaustWALCheckpoint exhausts the checkpoint path: snapshot write, log
// rotation, and everything between. A checkpoint never mutates the
// relation, so under every fault the live α must be untouched, and after
// a kill the directory must recover to exactly the acknowledged state —
// served by the old log, the new snapshot, or both, depending on where
// the crash landed.
func ExhaustWALCheckpoint(t *testing.T, p *faultinject.Plane, c Case) {
	// Trace a clean checkpoint.
	dir := t.TempDir()
	d := openWAL(t, dir, c, 0)
	seedWAL(t, d, c)
	p.Reset()
	p.Trace(true)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("trace checkpoint: %v", err)
	}
	pts := p.Points()
	p.Trace(false)
	p.Reset()
	if err := d.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	ckptPoints := 0
	for _, pt := range pts {
		if strings.HasPrefix(pt.Site, "ckpt.") || strings.HasPrefix(pt.Site, "wal.rotate.") {
			ckptPoints++
		}
	}
	if ckptPoints == 0 {
		t.Fatal("checkpoint passed no ckpt.*/wal.rotate.* points")
	}

	pre := func() *relation.Relation {
		r := c.build(t)
		return r.Instance().Relation()
	}()

	for step := 1; step <= len(pts); step++ {
		for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
			if mode == faultinject.Error && !pts[step-1].CanError {
				continue
			}
			dir := t.TempDir()
			d := openWAL(t, dir, c, 0)
			seedWAL(t, d, c)
			p.Reset()
			p.Arm(int64(step), mode)
			err, _ := runContained(func() error { return d.Checkpoint() })
			fired := len(p.Fired()) > 0
			p.Disarm()
			if !fired {
				t.Fatalf("step %d/%v: fault did not fire", step, mode)
			}
			if err == nil {
				t.Fatalf("step %d/%v: injected fault surfaced as success", step, mode)
			}
			if !alphaWAL(t, d).Equal(pre) {
				t.Fatalf("step %d/%v: failed checkpoint changed the live α", step, mode)
			}

			if mode == faultinject.Error {
				// A failed checkpoint must be retryable in place.
				if rerr := d.Checkpoint(); rerr != nil {
					t.Fatalf("step %d/error: checkpoint retry: %v", step, rerr)
				}
				if cerr := d.Close(); cerr != nil {
					t.Fatalf("step %d/error: close: %v", step, cerr)
				}
			} else {
				d.Close() // kill: release handles only
			}

			d2, oerr := tryOpenWAL(dir, c, 0)
			if oerr != nil {
				t.Fatalf("step %d/%v: reopen after checkpoint fault: %v", step, mode, oerr)
			}
			if !alphaWAL(t, d2).Equal(pre) {
				t.Fatalf("step %d/%v: recovery after checkpoint fault lost state", step, mode)
			}
			if rerr := d2.Checkpoint(); rerr != nil {
				t.Fatalf("step %d/%v: checkpoint after recovery: %v", step, mode, rerr)
			}
			if cerr := d2.Close(); cerr != nil {
				t.Fatalf("step %d/%v: close after recovery: %v", step, mode, cerr)
			}
		}
	}
}

// ExhaustWALRecovery exhausts recovery itself: a directory with a
// checkpoint and a log tail is prepared once, then durable.Open is run
// with a fault armed at every step it reaches. A faulted Open must fail
// (error or abandoned panic) and return no relation; because replay goes
// through the copy-on-write publish path, the directory is untouched and
// a disarmed retry must recover the full acknowledged state. This is the
// regression harness for replay-through-COW — a compensation-based
// replay would leave a half-applied relation behind on the first fault
// and the retry would disagree with the oracle.
func ExhaustWALRecovery(t *testing.T, p *faultinject.Plane, c Case) {
	dir := t.TempDir()
	d := openWAL(t, dir, c, 0)
	seedWAL(t, d, c)
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("prepare checkpoint: %v", err)
	}
	// Tail records past the checkpoint: run every mutation that still
	// applies, accepting that later ones may no-op after earlier ones.
	for _, mu := range c.Muts {
		if err := mu.Run(d); err != nil {
			t.Fatalf("prepare tail %s: %v", mu.Name, err)
		}
	}
	want := alphaWAL(t, d)
	if err := d.Close(); err != nil {
		t.Fatalf("prepare close: %v", err)
	}

	// Trace a clean recovery.
	p.Reset()
	p.Trace(true)
	d2, err := tryOpenWAL(dir, c, 0)
	if err != nil {
		t.Fatalf("trace open: %v", err)
	}
	pts := p.Points()
	p.Trace(false)
	p.Reset()
	if !alphaWAL(t, d2).Equal(want) {
		t.Fatal("clean recovery disagrees with the acknowledged state")
	}
	if err := d2.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	applySteps := 0
	for _, pt := range pts {
		if pt.Site == "recovery.apply" {
			applySteps++
		}
	}
	if applySteps == 0 {
		t.Fatal("recovery passed no recovery.apply points")
	}

	for step := 1; step <= len(pts); step++ {
		for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
			if mode == faultinject.Error && !pts[step-1].CanError {
				continue
			}
			p.Reset()
			p.Arm(int64(step), mode)
			var opened *core.DurableRelation
			err, _ := runContained(func() error {
				var oerr error
				opened, oerr = tryOpenWAL(dir, c, 0)
				return oerr
			})
			fired := len(p.Fired()) > 0
			p.Disarm()
			if !fired {
				t.Fatalf("step %d/%v: fault did not fire", step, mode)
			}
			if err == nil {
				opened.Close()
				t.Fatalf("step %d/%v: faulted recovery surfaced as success", step, mode)
			}
			if opened != nil {
				opened.Close()
				t.Fatalf("step %d/%v: faulted recovery returned a relation", step, mode)
			}
			// The COW guarantee: a disarmed retry sees an untouched
			// directory and recovers everything.
			p.Reset()
			d3, oerr := tryOpenWAL(dir, c, 0)
			if oerr != nil {
				t.Fatalf("step %d/%v: retried recovery failed: %v", step, mode, oerr)
			}
			if !alphaWAL(t, d3).Equal(want) {
				t.Fatalf("step %d/%v: retried recovery disagrees with the acknowledged state", step, mode)
			}
			if ierr := d3.CheckInvariants(); ierr != nil {
				t.Fatalf("step %d/%v: invariants after retried recovery: %v", step, mode, ierr)
			}
			if cerr := d3.Close(); cerr != nil {
				t.Fatalf("step %d/%v: close after retried recovery: %v", step, mode, cerr)
			}
		}
	}
}
