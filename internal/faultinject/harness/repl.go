package harness

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/repl"
)

// This file extends the harness to the replication plane: ExhaustRepl
// injects a fault — error and panic — at every repl.send / repl.recv /
// repl.apply step a replicated mutation passes, and ExhaustReplResubscribe
// does the same for the reconnect path (repl.resubscribe plus the
// handshake frames). The contract under every fault is the
// acknowledged-prefix oracle:
//
//   - The mutation itself must succeed: replication sits downstream of
//     acknowledgement, so a shipping fault may never surface into the
//     writer.
//
//   - The follower must converge: the fault kills at most one session,
//     catch-up resubscribes from the follower's own applied count, and
//     the replica must reach exactly the primary's post-mutation α with
//     its invariants intact — never a torn delta, never a state beyond
//     the acknowledged history.
//
// Determinism rests on the in-process pipe transport: net.Pipe is
// synchronous, so for a quiesced single-cell primary each replicated
// mutation crosses its points in a fixed order (the wal.* points of the
// mutation, then repl.send, repl.recv, repl.apply), and the step counter
// the plane assigns during the clean trace is stable across runs.

const replWait = 10 * time.Second

// replCut is a dialer wrapper that remembers the live connection so the
// resubscribe regime can sever it on demand.
type replCut struct {
	inner repl.Dialer
	mu    sync.Mutex
	cur   io.Closer
}

func (c *replCut) dial() (io.ReadWriteCloser, error) {
	conn, err := c.inner()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cur = conn
	c.mu.Unlock()
	return conn, nil
}

func (c *replCut) cut() {
	c.mu.Lock()
	cur := c.cur
	c.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}

// replEnv is one primary + publisher + follower stack, seeded and
// quiesced, ready for a traced or faulted mutation.
type replEnv struct {
	d   *core.DurableRelation
	pub *repl.Publisher
	fol *repl.Follower
	fm  *obs.Metrics
	cd  *replCut
}

func openRepl(t *testing.T, c Case) *replEnv {
	t.Helper()
	d := openWAL(t, t.TempDir(), c, 0)
	pub, err := repl.NewPublisher(d, repl.PublisherOptions{Retain: 1 << 20})
	if err != nil {
		t.Fatalf("%s: publisher: %v", c.Name, err)
	}
	fm := &obs.Metrics{}
	cd := &replCut{inner: repl.InProcDialer(pub)}
	fol, err := repl.NewFollower(c.Spec(), cd.dial, repl.FollowerOptions{
		Decomp:  c.Decomp(),
		Metrics: fm,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("%s: follower: %v", c.Name, err)
	}
	env := &replEnv{d: d, pub: pub, fol: fol, fm: fm, cd: cd}
	seedWAL(t, d, c)
	env.quiesce(t)
	return env
}

// quiesce waits until the follower has applied everything the publisher
// acknowledged — after it returns, no replication goroutine has pending
// work and no injection point can fire until the next mutation.
func (e *replEnv) quiesce(t *testing.T) {
	t.Helper()
	if err := e.fol.WaitFor(e.pub.Head(), replWait); err != nil {
		t.Fatalf("quiesce: %v (lag %d, last session error: %v)", err, e.fol.Lag(), e.fol.Err())
	}
}

func (e *replEnv) close() {
	e.fol.Close()
	e.pub.Close()
	e.d.Close()
}

// replicaAlpha reads the follower's abstraction α.
func replicaAlpha(t *testing.T, c Case, fol *repl.Follower) *relation.Relation {
	t.Helper()
	ts, err := fol.All()
	if err != nil {
		t.Fatalf("replica All: %v", err)
	}
	rr := relation.Empty(c.Spec().Cols())
	for _, tup := range ts {
		if err := rr.Insert(tup); err != nil {
			t.Fatalf("replica α tuple %v: %v", tup, err)
		}
	}
	return rr
}

// waitFired polls for the armed fault, which may fire in a replication
// goroutine after the mutation already returned to the writer.
func waitFired(t *testing.T, p *faultinject.Plane, step int, mode faultinject.Mode) {
	t.Helper()
	deadline := time.Now().Add(replWait)
	for len(p.Fired()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("step %d/%v: fault did not fire", step, mode)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// checkConverged asserts the full post-fault contract: primary at the
// oracle state, follower an exact copy of it at the acknowledged head,
// invariants intact, and the session death visible as a reconnect.
func checkConverged(t *testing.T, c Case, env *replEnv, want *relation.Relation, rcBefore uint64, label string) {
	t.Helper()
	env.quiesce(t)
	if !alphaWAL(t, env.d).Equal(want) {
		t.Fatalf("%s: primary α diverged from the oracle", label)
	}
	if got := replicaAlpha(t, c, env.fol); !got.Equal(want) {
		t.Fatalf("%s: replica α is not the acknowledged state:\n%v", label, got)
	}
	if env.fol.Applied() != env.pub.Head() {
		t.Fatalf("%s: replica applied %d != head %d after convergence", label, env.fol.Applied(), env.pub.Head())
	}
	if err := env.fol.CheckInvariants(); err != nil {
		t.Fatalf("%s: replica invariants: %v", label, err)
	}
	if got := env.fm.Snapshot().ReplReconnects; got <= rcBefore {
		t.Fatalf("%s: session-killing fault did not surface as a reconnect (%d -> %d)", label, rcBefore, got)
	}
}

// ExhaustRepl runs the exhaustive kill-point regime over the replication
// path of every mutation of the case: a fault at every repl.* step, in
// both modes, with the acknowledged-prefix contract asserted after each.
func ExhaustRepl(t *testing.T, p *faultinject.Plane, c Case) {
	for _, mu := range c.Muts {
		t.Run(mu.Name, func(t *testing.T) {
			// Trace the replicated mutation's injection points cleanly.
			env := openRepl(t, c)
			p.Reset()
			p.Trace(true)
			if err := mu.Run(env.d); err != nil {
				t.Fatalf("trace run: %v", err)
			}
			env.quiesce(t)
			pts := p.Points()
			p.Trace(false)
			p.Reset()
			env.close()
			var send, recv, apply int
			for _, pt := range pts {
				switch pt.Site {
				case "repl.send":
					send++
				case "repl.recv":
					recv++
				case "repl.apply":
					apply++
				}
			}
			if send == 0 || recv == 0 || apply == 0 {
				t.Fatalf("mutation crossed send=%d recv=%d apply=%d repl points — the plane is not reaching the replication path", send, recv, apply)
			}

			_, post := walOracles(t, c, mu)

			for step := 1; step <= len(pts); step++ {
				// The wal.* steps of the same trace are exhausted by
				// ExhaustWAL; here only the replication plane is under
				// test, so only its steps are armed.
				if !strings.HasPrefix(pts[step-1].Site, "repl.") {
					continue
				}
				for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
					env := openRepl(t, c)
					rcBefore := env.fm.Snapshot().ReplReconnects
					p.Reset()
					p.Arm(int64(step), mode)
					err, panicked := runContained(func() error { return mu.Run(env.d) })
					waitFired(t, p, step, mode)
					p.Disarm()
					// Replication is downstream of acknowledgement: the
					// writer must never see a shipping fault.
					if err != nil || panicked {
						t.Fatalf("step %d/%v: replication fault surfaced into the writer: %v", step, mode, err)
					}
					checkConverged(t, c, env, post, rcBefore,
						"step "+pts[step-1].Site+"/"+mode.String())
					env.close()
				}
			}
		})
	}
}

// ExhaustReplResubscribe exhausts the reconnect path: the connection is
// severed, and a fault is injected at every step of the resubscription
// that follows — the repl.resubscribe kill-point itself and the
// handshake's hello send/recv. Every faulted attempt must be absorbed by
// the retry loop; a replicated mutation run after the dust settles
// proves the recovered session is live and converges to the same prefix
// contract.
//
// Unlike ExhaustRepl, nothing is mutated while the reconnect is in
// flight: a writer racing the handshake would interleave its wal.*
// points with the resubscription's points nondeterministically. The
// traced phase is exactly cut-to-settle, which is causally ordered by
// the synchronous pipe (resubscribe before hello-send before
// hello-recv).
func ExhaustReplResubscribe(t *testing.T, p *faultinject.Plane, c Case) {
	mu := c.Muts[0]

	// Trace one cut-and-reconnect cycle cleanly.
	env := openRepl(t, c)
	p.Reset()
	p.Trace(true)
	env.cd.cut()
	waitSteady(t, p)
	pts := p.Points()
	p.Trace(false)
	p.Reset()
	env.quiesce(t)
	env.close()
	resub := 0
	for _, pt := range pts {
		if pt.Site == "repl.resubscribe" {
			resub++
		}
		if !strings.HasPrefix(pt.Site, "repl.") {
			t.Fatalf("non-replication point %s crossed during a reconnect", pt.Site)
		}
	}
	if resub == 0 {
		t.Fatal("cut did not cross the repl.resubscribe point")
	}

	_, post := walOracles(t, c, mu)

	for step := 1; step <= len(pts); step++ {
		for _, mode := range []faultinject.Mode{faultinject.Error, faultinject.Panic} {
			env := openRepl(t, c)
			rcBefore := env.fm.Snapshot().ReplReconnects
			p.Reset()
			p.Arm(int64(step), mode)
			env.cd.cut()
			waitSteady(t, p)
			waitFired(t, p, step, mode)
			p.Disarm()
			// The faulted attempt absorbed, the retried session must be
			// live: replicate one mutation through it.
			if err := mu.Run(env.d); err != nil {
				t.Fatalf("step %d/%v: mutation after reconnect: %v", step, mode, err)
			}
			checkConverged(t, c, env, post, rcBefore,
				"resubscribe step "+pts[step-1].Site+"/"+mode.String())
			env.close()
		}
	}
}

// waitSteady polls the plane's step counter until it has been quiet for
// long enough that the reconnect retry loop (1ms backoff) must have
// settled into an established session.
func waitSteady(t *testing.T, p *faultinject.Plane) {
	t.Helper()
	deadline := time.Now().Add(replWait)
	last := p.Steps()
	lastChange := time.Now()
	for time.Since(lastChange) < 100*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatal("reconnect did not settle")
		}
		time.Sleep(time.Millisecond)
		if cur := p.Steps(); cur != last {
			last, lastChange = cur, time.Now()
		}
	}
}
