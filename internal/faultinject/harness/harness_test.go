package harness

import (
	"flag"
	"testing"

	"repro/internal/faultinject"
)

var (
	faultSeeds = flag.Int("faultseeds", 2, "randomized fault schedules per corpus case")
	faultOps   = flag.Int("faultops", 120, "operations per randomized schedule")
)

func withPlane(t *testing.T) *faultinject.Plane {
	t.Helper()
	p := faultinject.NewPlane()
	faultinject.Install(p)
	t.Cleanup(faultinject.Uninstall)
	return p
}

// TestExhaustiveInjection is the harness's core guarantee: for every corpus
// decomposition, a fault at every reachable step of every mutation leaves
// the instance well-formed and α unchanged.
func TestExhaustiveInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			Exhaust(t, p, c)
		})
	}
}

// TestExhaustiveCOWInjection runs the same corpus through the MVCC tier:
// the failed mutation's fork must be dropped wholesale, leaving the
// published snapshot pointer-identical to the pre-mutation version — never
// a torn hybrid — at the same version number, and a retry must publish.
func TestExhaustiveCOWInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustCOW(t, p, c)
		})
	}
}

// TestRandomizedSchedules replays seed-driven op/fault schedules against a
// mirror oracle; raise -faultseeds (see `make faultinject`) for a longer
// soak.
func TestRandomizedSchedules(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			for seed := int64(1); seed <= int64(*faultSeeds); seed++ {
				Randomized(t, p, c, seed, *faultOps)
			}
		})
	}
}

// TestConcurrentInjection drives the sharded engine from several goroutines
// with faults being armed concurrently; `make ci-race` reruns it under the
// race detector.
func TestConcurrentInjection(t *testing.T) {
	p := withPlane(t)
	Concurrent(t, p, 4, 300)
}

// TestExhaustiveWALInjection is the durability guarantee: a fault — error
// or kill — at every reachable step of every mutation of a write-ahead-
// logged relation, including the WAL's own append and fsync steps, leaves
// a recoverable directory whose α is a prefix of acknowledgement.
func TestExhaustiveWALInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustWAL(t, p, c, 0)
		})
	}
}

// TestExhaustiveWALShardedInjection repeats the kill-point regime on the
// sharded durable tier (per-shard log segments) for the scheduler case,
// whose shard key is FD-certified.
func TestExhaustiveWALShardedInjection(t *testing.T) {
	p := withPlane(t)
	ExhaustWAL(t, p, schedulerCase(), 2)
}

// TestWALCheckpointInjection exhausts the checkpoint path: snapshot
// write, rename, and log rotation. No fault may disturb the live α, and
// every crash point must leave a directory that recovers the full state.
func TestWALCheckpointInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustWALCheckpoint(t, p, c)
		})
	}
}

// TestWALRecoveryInjection exhausts recovery itself: durable.Open with a
// fault at every replay step must fail loudly, and — because replay goes
// through the copy-on-write publish path — a retried Open must still
// recover everything.
func TestWALRecoveryInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustWALRecovery(t, p, c)
		})
	}
}

// TestExhaustiveReplInjection is the replication guarantee: a fault —
// error or panic — at every repl.send/recv/apply step of every
// replicated mutation kills at most one session, never surfaces into the
// writer, and leaves a follower that catches back up to exactly the
// acknowledged history.
func TestExhaustiveReplInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustRepl(t, p, c)
		})
	}
}

// TestReplResubscribeInjection exhausts the reconnect path itself: a
// fault at the repl.resubscribe kill-point and at each handshake frame
// of the resubscription following a severed connection must be absorbed
// by the retry loop, with the recovered session proven live.
func TestReplResubscribeInjection(t *testing.T) {
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			p := withPlane(t)
			ExhaustReplResubscribe(t, p, c)
		})
	}
}
