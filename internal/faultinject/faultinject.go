// Package faultinject is a deterministic, step-counted fault plane for the
// engine's atomicity tests, in the spirit of FoundationDB's simulation
// testing and of "Simple Testing Can Prevent Most Critical Failures"
// (OSDI 2014): every potentially-failing step of a mutation is numbered, and
// a harness can demand that step k fail — either by returning an injected
// error (at sites that can surface errors) or by panicking (at any site) —
// and then assert that the mutation left no torn state behind.
//
// The plane is installed globally (Install) and captured by components at
// construction time: instance.New snapshots the active plane into the
// instance, and dstruct.New wraps each data structure only when a plane is
// active. When no plane is installed — every production configuration —
// mutation hot paths pay a single nil-check per injection site and data
// structures are not wrapped at all, so injection is compiled out of the hot
// path in the sense that matters: no atomics, no locks, no indirection.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mode selects how an armed fault manifests.
type Mode uint8

const (
	// Error makes the armed step return an *Injected error from the
	// injection point. Only sites declared error-capable (the instance
	// mutation steps) fire in this mode; error injection at a site that
	// cannot return an error is recorded as skipped and does not fire.
	Error Mode = iota
	// Panic makes the armed step panic with an *Injected value, modelling a
	// crash inside plan execution or a data-structure operation.
	Panic
)

// String names the mode.
func (m Mode) String() string {
	if m == Error {
		return "error"
	}
	return "panic"
}

// Injected is the payload of an injected fault: the error returned in Error
// mode and the panic value in Panic mode.
type Injected struct {
	Site string // injection-site label, e.g. "instance.insert.link"
	Step int64  // 1-based step count at which the fault fired
	Mode Mode
}

// Error implements error.
func (i *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected %s at step %d (%s)", i.Mode, i.Step, i.Site)
}

// PointInfo describes one injection point reached while tracing: its site
// label and whether it can surface an injected error (as opposed to only a
// panic).
type PointInfo struct {
	Site     string
	CanError bool
}

// A Plane counts injection points and fires a scheduled fault. All methods
// are safe for concurrent use; firing is single-shot unless armed with
// ArmFrom. The zero Plane is usable and disarmed.
type Plane struct {
	mu     sync.Mutex
	step   int64
	fireAt int64 // 0 = disarmed
	from   bool  // fire at every step >= fireAt, not just the first
	mode   Mode
	trace  bool
	points []PointInfo
	fired  []Injected
}

// NewPlane returns a disarmed plane.
func NewPlane() *Plane { return &Plane{} }

// Reset zeroes the step counter, disarms the plane, and clears the trace and
// firing records. Harnesses call it between the seeding phase and the
// mutation under test so step numbers are stable per mutation.
func (p *Plane) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.step = 0
	p.fireAt = 0
	p.from = false
	p.points = p.points[:0]
	p.fired = p.fired[:0]
}

// Trace toggles recording of every reached injection point (see Points).
func (p *Plane) Trace(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.trace = on
	if on {
		p.points = p.points[:0]
	}
}

// Points returns a copy of the injection points reached since tracing was
// enabled, in order. Index i describes step i+1.
func (p *Plane) Points() []PointInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PointInfo, len(p.points))
	copy(out, p.points)
	return out
}

// Steps returns the number of injection points passed since the last Reset.
func (p *Plane) Steps() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.step
}

// Arm schedules a single fault at the given 1-based step.
func (p *Plane) Arm(step int64, mode Mode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fireAt = step
	p.from = false
	p.mode = mode
	p.fired = p.fired[:0]
}

// ArmFrom schedules a fault at every step from the given one on. It models a
// persistently failing substrate — in particular it makes undo-log rollback
// itself fail, which is how the harness reaches the poisoned-relation path.
func (p *Plane) ArmFrom(step int64, mode Mode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fireAt = step
	p.from = true
	p.mode = mode
	p.fired = p.fired[:0]
}

// Disarm cancels any scheduled fault without resetting the step counter.
func (p *Plane) Disarm() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fireAt = 0
	p.from = false
}

// Fired returns a copy of the faults that actually fired since the last
// Arm/ArmFrom/Reset.
func (p *Plane) Fired() []Injected {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Injected, len(p.fired))
	copy(out, p.fired)
	return out
}

// Point is one injection point. Every call counts one step. If the plane is
// armed for this step it fires: in Panic mode it panics with an *Injected;
// in Error mode it returns an *Injected error when canError is set and does
// nothing otherwise (the step is still counted). Call sites that cannot
// propagate an error pass canError=false and may ignore the result.
func (p *Plane) Point(site string, canError bool) error {
	p.mu.Lock()
	p.step++
	if p.trace {
		p.points = append(p.points, PointInfo{Site: site, CanError: canError})
	}
	fire := p.fireAt > 0 && (p.step == p.fireAt || (p.from && p.step > p.fireAt))
	if fire && p.mode == Error && !canError {
		fire = false
		if !p.from {
			p.fireAt = 0 // the scheduled step cannot error; stand down
		}
	}
	if !fire {
		p.mu.Unlock()
		return nil
	}
	inj := Injected{Site: site, Step: p.step, Mode: p.mode}
	p.fired = append(p.fired, inj)
	if !p.from {
		p.fireAt = 0 // single shot
	}
	mode := p.mode
	p.mu.Unlock()
	if mode == Panic {
		panic(&inj)
	}
	return &inj
}

// active is the globally installed plane, captured by instances and data
// structures at construction time.
var active atomic.Pointer[Plane]

// Install makes p the plane that newly constructed instances and data
// structures will report their steps to. Passing nil uninstalls.
func Install(p *Plane) {
	active.Store(p)
}

// Uninstall removes the installed plane. Components that captured it keep
// their reference; harnesses should discard those components too.
func Uninstall() {
	active.Store(nil)
}

// Active returns the installed plane, or nil when fault injection is off.
func Active() *Plane {
	return active.Load()
}
