package faultinject

import (
	"errors"
	"testing"
)

func TestPointCountsAndSingleShot(t *testing.T) {
	p := NewPlane()
	for i := 0; i < 5; i++ {
		if err := p.Point("s", true); err != nil {
			t.Fatalf("disarmed point fired: %v", err)
		}
	}
	if p.Steps() != 5 {
		t.Fatalf("Steps = %d, want 5", p.Steps())
	}
	p.Reset()
	p.Arm(2, Error)
	if err := p.Point("a", true); err != nil {
		t.Fatalf("step 1 fired early: %v", err)
	}
	err := p.Point("b", true)
	if err == nil {
		t.Fatal("armed step 2 did not fire")
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Site != "b" || inj.Step != 2 || inj.Mode != Error {
		t.Fatalf("injected = %+v", inj)
	}
	// Single shot: later steps pass.
	if err := p.Point("c", true); err != nil {
		t.Fatalf("fired twice: %v", err)
	}
	if got := p.Fired(); len(got) != 1 || got[0].Site != "b" {
		t.Fatalf("Fired = %v", got)
	}
}

func TestErrorModeSkipsPanicOnlySites(t *testing.T) {
	p := NewPlane()
	p.Arm(1, Error)
	if err := p.Point("panic-only", false); err != nil {
		t.Fatalf("error fired at a panic-only site: %v", err)
	}
	// The plane stands down rather than firing at the wrong step later.
	if err := p.Point("can-error", true); err != nil {
		t.Fatalf("stood-down plane fired: %v", err)
	}
	if len(p.Fired()) != 0 {
		t.Fatalf("Fired = %v", p.Fired())
	}
}

func TestPanicMode(t *testing.T) {
	p := NewPlane()
	p.Arm(1, Panic)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		inj, ok := r.(*Injected)
		if !ok || inj.Mode != Panic {
			t.Fatalf("panic value = %#v", r)
		}
	}()
	_ = p.Point("s", false)
}

func TestArmFromFiresPersistently(t *testing.T) {
	p := NewPlane()
	p.ArmFrom(2, Error)
	if err := p.Point("a", true); err != nil {
		t.Fatal("step 1 fired")
	}
	if err := p.Point("b", true); err == nil {
		t.Fatal("step 2 did not fire")
	}
	if err := p.Point("c", true); err == nil {
		t.Fatal("step 3 did not fire (ArmFrom is persistent)")
	}
	if len(p.Fired()) != 2 {
		t.Fatalf("Fired = %v", p.Fired())
	}
}

func TestTraceRecordsPoints(t *testing.T) {
	p := NewPlane()
	p.Trace(true)
	_ = p.Point("x", true)
	_ = p.Point("y", false)
	pts := p.Points()
	if len(pts) != 2 || pts[0] != (PointInfo{Site: "x", CanError: true}) || pts[1] != (PointInfo{Site: "y", CanError: false}) {
		t.Fatalf("Points = %v", pts)
	}
	p.Reset()
	if len(p.Points()) != 0 || p.Steps() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestInstallActive(t *testing.T) {
	if Active() != nil {
		t.Fatal("plane installed at start")
	}
	p := NewPlane()
	Install(p)
	if Active() != p {
		t.Fatal("Active != installed plane")
	}
	Uninstall()
	if Active() != nil {
		t.Fatal("Uninstall left a plane")
	}
}
