package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// A Tuple maps a finite set of columns to values (§2). Tuples are immutable:
// all operations return fresh tuples. The zero Tuple is the empty tuple 〈〉,
// which is a valuation for the empty column set.
//
// Internally the bindings are kept sorted by column name so that equality,
// matching, and key encoding are canonical.
type Tuple struct {
	cols []string
	vals []value.Value
}

// Binding is a single column/value pair, used to construct tuples.
type Binding struct {
	Col string
	Val value.Value
}

// NewTuple builds a tuple from bindings. It panics if the same column is
// bound twice; tuple construction with duplicate columns is always a
// programming error.
func NewTuple(bs ...Binding) Tuple {
	if len(bs) == 0 {
		return Tuple{}
	}
	sorted := make([]Binding, len(bs))
	copy(sorted, bs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Col < sorted[j].Col })
	cols := make([]string, len(sorted))
	vals := make([]value.Value, len(sorted))
	for i, b := range sorted {
		if i > 0 && b.Col == sorted[i-1].Col {
			panic(fmt.Sprintf("relation: duplicate column %q in tuple", b.Col))
		}
		cols[i] = b.Col
		vals[i] = b.Val
	}
	return Tuple{cols: cols, vals: vals}
}

// Bind is shorthand for Binding{col, v}.
func Bind(col string, v value.Value) Binding { return Binding{Col: col, Val: v} }

// SortedTuple wraps pre-sorted parallel column/value slices as a Tuple
// without copying or validation: cols must be strictly sorted ascending and
// vals[i] is the value of cols[i]. The tuple aliases both slices, so the
// caller must treat them as frozen for the tuple's lifetime (or, for
// transient lookup keys, until the callee returns). It is the zero-cost
// constructor for hot paths — compiled query programs that already hold
// values in column order — where NewTuple's sort and copy would dominate.
func SortedTuple(cols []string, vals []value.Value) Tuple {
	return Tuple{cols: cols, vals: vals}
}

// BindInt binds col to the integer v.
func BindInt(col string, v int64) Binding { return Binding{Col: col, Val: value.OfInt(v)} }

// BindString binds col to the string s.
func BindString(col string, s string) Binding { return Binding{Col: col, Val: value.OfString(s)} }

// Dom returns the domain of t: the set of columns it binds.
func (t Tuple) Dom() Cols { return Cols{names: t.cols} }

// Len returns the number of bound columns.
func (t Tuple) Len() int { return len(t.cols) }

// ValueAt returns the value of the i-th binding in column order. It is the
// positional accessor for hot paths that already know the tuple's shape —
// in particular single-column map keys, whose sole value is ValueAt(0).
func (t Tuple) ValueAt(i int) value.Value { return t.vals[i] }

// Get returns the value of column c and whether it is bound.
func (t Tuple) Get(c string) (value.Value, bool) {
	i := sort.SearchStrings(t.cols, c)
	if i < len(t.cols) && t.cols[i] == c {
		return t.vals[i], true
	}
	return value.Value{}, false
}

// MustGet returns the value of column c, panicking if unbound. Use in code
// paths where the domain has already been validated.
func (t Tuple) MustGet(c string) value.Value {
	v, ok := t.Get(c)
	if !ok {
		panic(fmt.Sprintf("relation: column %q unbound in tuple %v", c, t))
	}
	return v
}

// Project returns π_C(t): the restriction of t to the columns of C that t
// binds. Columns of C absent from t are silently dropped, which matches the
// paper's use of projection on partial tuples.
func (t Tuple) Project(c Cols) Tuple {
	cols := make([]string, 0, c.Len())
	vals := make([]value.Value, 0, c.Len())
	for i, name := range t.cols {
		if c.Has(name) {
			cols = append(cols, name)
			vals = append(vals, t.vals[i])
		}
	}
	return Tuple{cols: cols, vals: vals}
}

// ProjectStrict is Project for callers that require every column of C to be
// bound: it returns an error naming the first unbound column instead of
// silently dropping it (as Project does) or panicking (as MustGet does).
// The engine's mutation paths use it so a malformed caller tuple surfaces as
// an error through the API rather than a panic through a tier's lock.
func (t Tuple) ProjectStrict(c Cols) (Tuple, error) {
	p := t.Project(c)
	if p.Len() != c.Len() {
		for _, name := range c.Names() {
			if !t.Dom().Has(name) {
				return Tuple{}, fmt.Errorf("relation: column %q unbound in tuple %v", name, t)
			}
		}
	}
	return p, nil
}

// Extends reports t ⊇ s: t binds every column of s to the same value.
func (t Tuple) Extends(s Tuple) bool {
	i := 0
	for j, c := range s.cols {
		for i < len(t.cols) && t.cols[i] < c {
			i++
		}
		if i == len(t.cols) || t.cols[i] != c || t.vals[i] != s.vals[j] {
			return false
		}
	}
	return true
}

// Matches reports t ∼ s: t and s agree on all common columns.
func (t Tuple) Matches(s Tuple) bool {
	i, j := 0, 0
	for i < len(t.cols) && j < len(s.cols) {
		switch {
		case t.cols[i] == s.cols[j]:
			if t.vals[i] != s.vals[j] {
				return false
			}
			i++
			j++
		case t.cols[i] < s.cols[j]:
			i++
		default:
			j++
		}
	}
	return true
}

// MergeProject returns π_out(t ▷ u) in a single pass, without materializing
// the merged tuple — one allocation instead of Merge's plus Project's. The
// result shares out's name slice. The boolean reports whether every column
// of out was bound by t or u; on false the projection would silently drop
// columns and the caller should fall back to Merge+Project semantics.
func (t Tuple) MergeProject(u Tuple, out Cols) (Tuple, bool) {
	if out.IsEmpty() {
		return Tuple{}, true
	}
	vals := make([]value.Value, len(out.names))
	i, j := 0, 0
	for k, c := range out.names {
		for i < len(t.cols) && t.cols[i] < c {
			i++
		}
		for j < len(u.cols) && u.cols[j] < c {
			j++
		}
		switch {
		case j < len(u.cols) && u.cols[j] == c:
			vals[k] = u.vals[j] // right bias, like Merge
		case i < len(t.cols) && t.cols[i] == c:
			vals[k] = t.vals[i]
		default:
			return Tuple{}, false
		}
	}
	return Tuple{cols: out.names, vals: vals}, true
}

// Merge returns t ▷ u: the tuple over dom t ∪ dom u taking u's value wherever
// the two disagree (the paper's s ⊔ t with right bias).
func (t Tuple) Merge(u Tuple) Tuple {
	cols := make([]string, 0, len(t.cols)+len(u.cols))
	vals := make([]value.Value, 0, len(t.cols)+len(u.cols))
	i, j := 0, 0
	for i < len(t.cols) || j < len(u.cols) {
		switch {
		case i == len(t.cols):
			cols = append(cols, u.cols[j])
			vals = append(vals, u.vals[j])
			j++
		case j == len(u.cols):
			cols = append(cols, t.cols[i])
			vals = append(vals, t.vals[i])
			i++
		case t.cols[i] == u.cols[j]:
			cols = append(cols, u.cols[j])
			vals = append(vals, u.vals[j]) // right bias
			i++
			j++
		case t.cols[i] < u.cols[j]:
			cols = append(cols, t.cols[i])
			vals = append(vals, t.vals[i])
			i++
		default:
			cols = append(cols, u.cols[j])
			vals = append(vals, u.vals[j])
			j++
		}
	}
	return Tuple{cols: cols, vals: vals}
}

// Equal reports whether t and u bind exactly the same columns to the same
// values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t.cols) != len(u.cols) {
		return false
	}
	for i := range t.cols {
		if t.cols[i] != u.cols[i] || t.vals[i] != u.vals[i] {
			return false
		}
	}
	return true
}

// keySize returns the exact encoded length of Key(), so buffers can be
// allocated once instead of grown.
func (t Tuple) keySize() int {
	n := 0
	for i, c := range t.cols {
		n += 2 + len(c) + t.vals[i].EncodedSize()
	}
	return n
}

// valuesKeySize returns the exact encoded length of ValuesKey().
func (t Tuple) valuesKeySize() int {
	n := 0
	for _, v := range t.vals {
		n += v.EncodedSize()
	}
	return n
}

// AppendKey appends the canonical injective encoding of t (see Key) to b
// and returns the extended slice. Callers on hot paths pass a reused
// scratch buffer (b[:0]) to avoid allocating a fresh key per operation.
func (t Tuple) AppendKey(b []byte) []byte {
	if need := len(b) + t.keySize(); cap(b) < need {
		nb := make([]byte, len(b), need)
		copy(nb, b)
		b = nb
	}
	for i, c := range t.cols {
		b = append(b, byte(len(c)>>8), byte(len(c)))
		b = append(b, c...)
		b = t.vals[i].AppendEncode(b)
	}
	return b
}

// Key returns a canonical, injective string encoding of t, usable as a Go
// map key. Tuples with different domains or values always get different
// keys.
func (t Tuple) Key() string {
	b := t.AppendKey(make([]byte, 0, t.keySize()))
	return string(b)
}

// AppendValuesKey appends the values-only encoding of t (see ValuesKey) to
// b and returns the extended slice; the scratch-buffer contract matches
// AppendKey.
func (t Tuple) AppendValuesKey(b []byte) []byte {
	if need := len(b) + t.valuesKeySize(); cap(b) < need {
		nb := make([]byte, len(b), need)
		copy(nb, b)
		b = nb
	}
	for _, v := range t.vals {
		b = v.AppendEncode(b)
	}
	return b
}

// ValuesKey returns an injective encoding of only the values of t, in column
// order. It is used as a data-structure key when the column set is fixed by
// context (all keys in one map share a domain).
func (t Tuple) ValuesKey() string {
	b := t.AppendValuesKey(make([]byte, 0, t.valuesKeySize()))
	return string(b)
}

// Compare totally orders tuples with equal domains by comparing values in
// column order. It panics if the domains differ.
func (t Tuple) Compare(u Tuple) int {
	if len(t.cols) != len(u.cols) {
		panic("relation: Compare on tuples with different domains")
	}
	for i := range t.cols {
		if t.cols[i] != u.cols[i] {
			panic("relation: Compare on tuples with different domains")
		}
		if c := value.Compare(t.vals[i], u.vals[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Bindings returns the bindings of t in column order. The caller may mutate
// the returned slice.
func (t Tuple) Bindings() []Binding {
	bs := make([]Binding, len(t.cols))
	for i := range t.cols {
		bs[i] = Binding{Col: t.cols[i], Val: t.vals[i]}
	}
	return bs
}

// String renders the tuple as 〈a: 1, b: "x"〉-style text for diagnostics.
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	for i, c := range t.cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c)
		sb.WriteString(": ")
		sb.WriteString(t.vals[i].String())
	}
	sb.WriteByte('>')
	return sb.String()
}
