// Package relation implements the relational abstraction of §2 of the paper:
// tuples over named columns, column sets, relational algebra, and a
// reference ("oracle") implementation of the five relational operations
// (empty, insert, remove, update, query) on plain tuple sets.
//
// The oracle is deliberately simple: the rest of the system — decompositions,
// instances, query plans — is verified against it, so clarity beats speed
// here.
package relation

import (
	"sort"
	"strings"
)

// Cols is an immutable set of column names, stored sorted and de-duplicated.
// The zero value is the empty set. Treat values as immutable; all methods
// return fresh sets.
type Cols struct {
	names []string
}

// NewCols returns the column set containing the given names.
func NewCols(names ...string) Cols {
	if len(names) == 0 {
		return Cols{}
	}
	s := make([]string, len(names))
	copy(s, names)
	sort.Strings(s)
	out := s[:0]
	for i, n := range s {
		if i == 0 || n != s[i-1] {
			out = append(out, n)
		}
	}
	return Cols{names: out}
}

// Len returns the number of columns in the set.
func (c Cols) Len() int { return len(c.names) }

// IsEmpty reports whether the set has no columns.
func (c Cols) IsEmpty() bool { return len(c.names) == 0 }

// Names returns the column names in sorted order. The caller must not
// mutate the returned slice.
func (c Cols) Names() []string { return c.names }

// Has reports whether name is in the set.
func (c Cols) Has(name string) bool {
	i := sort.SearchStrings(c.names, name)
	return i < len(c.names) && c.names[i] == name
}

// Equal reports whether c and d contain exactly the same columns.
func (c Cols) Equal(d Cols) bool {
	if len(c.names) != len(d.names) {
		return false
	}
	for i := range c.names {
		if c.names[i] != d.names[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every column of c is in d.
func (c Cols) SubsetOf(d Cols) bool {
	i, j := 0, 0
	for i < len(c.names) && j < len(d.names) {
		switch {
		case c.names[i] == d.names[j]:
			i++
			j++
		case c.names[i] > d.names[j]:
			j++
		default:
			return false
		}
	}
	return i == len(c.names)
}

// Intersects reports whether c ∩ d is non-empty without materializing the
// intersection — the allocation-free form of !c.Intersect(d).IsEmpty() for
// hot paths.
func (c Cols) Intersects(d Cols) bool {
	i, j := 0, 0
	for i < len(c.names) && j < len(d.names) {
		switch {
		case c.names[i] == d.names[j]:
			return true
		case c.names[i] < d.names[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Union returns c ∪ d.
func (c Cols) Union(d Cols) Cols {
	if c.IsEmpty() {
		return d
	}
	if d.IsEmpty() {
		return c
	}
	out := make([]string, 0, len(c.names)+len(d.names))
	i, j := 0, 0
	for i < len(c.names) || j < len(d.names) {
		switch {
		case i == len(c.names):
			out = append(out, d.names[j])
			j++
		case j == len(d.names):
			out = append(out, c.names[i])
			i++
		case c.names[i] == d.names[j]:
			out = append(out, c.names[i])
			i++
			j++
		case c.names[i] < d.names[j]:
			out = append(out, c.names[i])
			i++
		default:
			out = append(out, d.names[j])
			j++
		}
	}
	return Cols{names: out}
}

// Intersect returns c ∩ d.
func (c Cols) Intersect(d Cols) Cols {
	out := make([]string, 0, min(len(c.names), len(d.names)))
	i, j := 0, 0
	for i < len(c.names) && j < len(d.names) {
		switch {
		case c.names[i] == d.names[j]:
			out = append(out, c.names[i])
			i++
			j++
		case c.names[i] < d.names[j]:
			i++
		default:
			j++
		}
	}
	return Cols{names: out}
}

// Minus returns c \ d.
func (c Cols) Minus(d Cols) Cols {
	out := make([]string, 0, len(c.names))
	i, j := 0, 0
	for i < len(c.names) {
		switch {
		case j == len(d.names) || c.names[i] < d.names[j]:
			out = append(out, c.names[i])
			i++
		case c.names[i] == d.names[j]:
			i++
			j++
		default:
			j++
		}
	}
	return Cols{names: out}
}

// SymDiff returns the symmetric difference c ⊖ d.
func (c Cols) SymDiff(d Cols) Cols {
	return c.Minus(d).Union(d.Minus(c))
}

// Key returns a canonical string key for the set, usable as a Go map key.
func (c Cols) Key() string { return strings.Join(c.names, "\x00") }

// AppendKey appends the canonical key of the set (see Key) to b and
// returns the extended slice, so hot paths can build composite cache
// signatures in a reused scratch buffer.
func (c Cols) AppendKey(b []byte) []byte {
	for i, n := range c.names {
		if i > 0 {
			b = append(b, 0)
		}
		b = append(b, n...)
	}
	return b
}

// String renders the set as {a, b, c} for diagnostics.
func (c Cols) String() string {
	return "{" + strings.Join(c.names, ", ") + "}"
}
