package relation

import "repro/internal/value"

// HashShard returns a stable 64-bit hash of t's values on the columns of
// key, in key's (sorted) column order, and reports whether t binds every
// key column. It hashes the same byte stream AppendValuesKey would encode
// for the projection π_key(t), but without materializing the projection or
// the encoding — shard routing must not allocate per operation.
//
// The hash depends only on the key columns' values (not on any extra
// columns t binds), so a full tuple and a pattern binding the same key
// values always route identically.
func (t Tuple) HashShard(key Cols) (uint64, bool) {
	h := value.HashSeed
	i := 0
	for _, c := range key.names {
		for i < len(t.cols) && t.cols[i] < c {
			i++
		}
		if i == len(t.cols) || t.cols[i] != c {
			return 0, false
		}
		h = t.vals[i].HashInto(h)
	}
	return h, true
}

// BindsAll reports whether t binds every column of c: the routing
// precondition for keyed operations on a sharded engine.
func (t Tuple) BindsAll(c Cols) bool {
	i := 0
	for _, name := range c.names {
		for i < len(t.cols) && t.cols[i] < name {
			i++
		}
		if i == len(t.cols) || t.cols[i] != name {
			return false
		}
	}
	return true
}
