package relation

import (
	"math/rand"
	"testing"
)

var schedCols = NewCols("ns", "pid", "state", "cpu")

// paperRelation returns the relation r_s of Equation (1) in the paper.
func paperRelation() *Relation {
	return FromTuples(schedCols,
		schedTuple(1, 1, "S", 7),
		schedTuple(1, 2, "R", 4),
		schedTuple(2, 1, "S", 5),
	)
}

func TestEmptyInsertQuery(t *testing.T) {
	r := Empty(schedCols)
	if r.Len() != 0 {
		t.Fatalf("empty relation has %d tuples", r.Len())
	}
	if err := r.Insert(schedTuple(7, 42, "R", 0)); err != nil {
		t.Fatal(err)
	}
	got := r.Query(NewTuple(BindString("state", "R")), NewCols("ns", "pid"))
	if len(got) != 1 || !got[0].Equal(tupNsPid(7, 42)) {
		t.Errorf("query = %v", got)
	}
}

func TestInsertWrongColumns(t *testing.T) {
	r := Empty(schedCols)
	if err := r.Insert(tupNsPid(1, 2)); err == nil {
		t.Errorf("insert with missing columns succeeded")
	}
	if err := r.Insert(schedTuple(1, 2, "R", 0).Merge(NewTuple(BindInt("extra", 1)))); err == nil {
		t.Errorf("insert with extra columns succeeded")
	}
}

func TestInsertIdempotent(t *testing.T) {
	r := Empty(schedCols)
	tp := schedTuple(1, 1, "S", 7)
	_ = r.Insert(tp)
	_ = r.Insert(tp)
	if r.Len() != 1 {
		t.Errorf("duplicate insert created %d tuples", r.Len())
	}
}

func TestPaperQueryExamples(t *testing.T) {
	r := paperRelation()

	// query r <state: S> {ns, pid} — the sleeping processes.
	got := r.Query(NewTuple(BindString("state", "S")), NewCols("ns", "pid"))
	want := []Tuple{tupNsPid(1, 1), tupNsPid(2, 1)}
	if len(got) != len(want) {
		t.Fatalf("query sleeping = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("query sleeping[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// query r <ns: 1, pid: 2> {state, cpu}.
	got = r.Query(tupNsPid(1, 2), NewCols("state", "cpu"))
	if len(got) != 1 || got[0].MustGet("state").Str() != "R" || got[0].MustGet("cpu").Int() != 4 {
		t.Errorf("point query = %v", got)
	}

	// Query with empty pattern returns everything projected.
	got = r.Query(NewTuple(), NewCols("ns"))
	if len(got) != 2 { // ns ∈ {1, 2}: projection is a set
		t.Errorf("projection dedup failed: %v", got)
	}
}

func TestRemove(t *testing.T) {
	r := paperRelation()
	if n := r.Remove(tupNsPid(1, 2)); n != 1 {
		t.Errorf("Remove matched %d", n)
	}
	if r.Len() != 2 {
		t.Errorf("Len after remove = %d", r.Len())
	}
	// Pattern matching several tuples.
	if n := r.Remove(NewTuple(BindString("state", "S"))); n != 2 {
		t.Errorf("Remove state=S matched %d", n)
	}
	if r.Len() != 0 {
		t.Errorf("relation not empty after removing everything")
	}
	// Removing from empty is a no-op.
	if n := r.Remove(NewTuple()); n != 0 {
		t.Errorf("Remove on empty = %d", n)
	}
}

func TestUpdate(t *testing.T) {
	r := paperRelation()
	// Mark process (1,2) sleeping — the paper's update example.
	n := r.Update(tupNsPid(1, 2), NewTuple(BindString("state", "S")))
	if n != 1 {
		t.Fatalf("Update matched %d", n)
	}
	got := r.Query(tupNsPid(1, 2), NewCols("state"))
	if len(got) != 1 || got[0].MustGet("state").Str() != "S" {
		t.Errorf("after update: %v", got)
	}
	if r.Len() != 3 {
		t.Errorf("update changed cardinality: %d", r.Len())
	}
}

func TestUpdateMayMergeTuples(t *testing.T) {
	// Non-key update can collapse tuples — the semantics the paper defines
	// (the decomposition layer restricts to key patterns; the oracle must
	// implement the general case).
	r := FromTuples(NewCols("k", "v"),
		NewTuple(BindInt("k", 1), BindInt("v", 10)),
		NewTuple(BindInt("k", 2), BindInt("v", 10)),
	)
	r.Update(NewTuple(BindInt("v", 10)), NewTuple(BindInt("k", 9)))
	if r.Len() != 1 {
		t.Errorf("merging update: Len = %d, want 1", r.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	r := paperRelation()
	c := r.Clone()
	r.Remove(NewTuple())
	if c.Len() != 3 {
		t.Errorf("clone affected by mutation of original")
	}
}

func TestAlgebra(t *testing.T) {
	r := paperRelation()
	s := FromTuples(schedCols,
		schedTuple(1, 1, "S", 7),
		schedTuple(9, 9, "R", 1),
	)
	if got := Union(r, s).Len(); got != 4 {
		t.Errorf("Union len = %d", got)
	}
	if got := Intersect(r, s).Len(); got != 1 {
		t.Errorf("Intersect len = %d", got)
	}
	if got := Diff(r, s).Len(); got != 2 {
		t.Errorf("Diff len = %d", got)
	}
	if got := SymDiff(r, s).Len(); got != 3 {
		t.Errorf("SymDiff len = %d", got)
	}
	p := Project(r, NewCols("state"))
	if p.Len() != 2 {
		t.Errorf("Project len = %d", p.Len())
	}
}

func TestJoin(t *testing.T) {
	left := FromTuples(NewCols("ns", "pid"),
		tupNsPid(1, 1), tupNsPid(1, 2), tupNsPid(2, 1))
	right := FromTuples(NewCols("pid", "cpu"),
		NewTuple(BindInt("pid", 1), BindInt("cpu", 7)),
		NewTuple(BindInt("pid", 2), BindInt("cpu", 4)),
	)
	j := Join(left, right)
	if !j.Cols().Equal(NewCols("ns", "pid", "cpu")) {
		t.Fatalf("join columns = %v", j.Cols())
	}
	if j.Len() != 3 {
		t.Errorf("join len = %d, want 3", j.Len())
	}
	if !j.Contains(NewTuple(BindInt("ns", 2), BindInt("pid", 1), BindInt("cpu", 7))) {
		t.Errorf("join missing expected tuple")
	}
}

func TestJoinDisjointIsCrossProduct(t *testing.T) {
	a := FromTuples(NewCols("x"), NewTuple(BindInt("x", 1)), NewTuple(BindInt("x", 2)))
	b := FromTuples(NewCols("y"), NewTuple(BindInt("y", 3)), NewTuple(BindInt("y", 4)))
	if got := Join(a, b).Len(); got != 4 {
		t.Errorf("cross product len = %d, want 4", got)
	}
}

func TestJoinProjectIdentity(t *testing.T) {
	// r ⊆ π_B(r) ⋈ π_C(r) always; equality needs an FD — checked in the
	// adequacy tests. Here just the containment on a random relation.
	rnd := rand.New(rand.NewSource(3))
	r := Empty(schedCols)
	for i := 0; i < 40; i++ {
		_ = r.Insert(schedTuple(int64(rnd.Intn(3)), int64(rnd.Intn(4)), []string{"R", "S"}[rnd.Intn(2)], int64(rnd.Intn(5))))
	}
	b := NewCols("ns", "pid", "state")
	c := NewCols("ns", "pid", "cpu")
	j := Join(Project(r, b), Project(r, c))
	if Diff(r, j).Len() != 0 {
		t.Errorf("r not contained in join of its projections")
	}
}

func TestSingletonAndEqual(t *testing.T) {
	tp := schedTuple(1, 1, "S", 7)
	s := Singleton(tp)
	if s.Len() != 1 || !s.Contains(tp) {
		t.Errorf("Singleton wrong: %v", s)
	}
	if !paperRelation().Equal(paperRelation()) {
		t.Errorf("Equal on identical relations = false")
	}
	if paperRelation().Equal(s) {
		t.Errorf("Equal across different relations = true")
	}
}

func TestStringDeterministic(t *testing.T) {
	a, b := paperRelation().String(), paperRelation().String()
	if a != b || a == "" {
		t.Errorf("String not deterministic or empty")
	}
}
