package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func tupNsPid(ns, pid int64) Tuple {
	return NewTuple(BindInt("ns", ns), BindInt("pid", pid))
}

func schedTuple(ns, pid int64, state string, cpu int64) Tuple {
	return NewTuple(
		BindInt("ns", ns), BindInt("pid", pid),
		BindString("state", state), BindInt("cpu", cpu))
}

func TestTupleBasics(t *testing.T) {
	tp := schedTuple(1, 2, "R", 7)
	if tp.Len() != 4 {
		t.Fatalf("Len = %d", tp.Len())
	}
	if !tp.Dom().Equal(NewCols("ns", "pid", "state", "cpu")) {
		t.Errorf("Dom = %v", tp.Dom())
	}
	if v, ok := tp.Get("state"); !ok || v.Str() != "R" {
		t.Errorf("Get(state) = %v, %v", v, ok)
	}
	if _, ok := tp.Get("missing"); ok {
		t.Errorf("Get(missing) reported bound")
	}
	if tp.MustGet("cpu").Int() != 7 {
		t.Errorf("MustGet(cpu) wrong")
	}
}

func TestTupleDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate column did not panic")
		}
	}()
	NewTuple(BindInt("a", 1), BindInt("a", 2))
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustGet on unbound column did not panic")
		}
	}()
	NewTuple().MustGet("x")
}

func TestProject(t *testing.T) {
	tp := schedTuple(1, 2, "S", 5)
	p := tp.Project(NewCols("ns", "pid"))
	if !p.Equal(tupNsPid(1, 2)) {
		t.Errorf("Project = %v", p)
	}
	// Projection onto columns not in the tuple drops them.
	p2 := tp.Project(NewCols("ns", "zzz"))
	if !p2.Equal(NewTuple(BindInt("ns", 1))) {
		t.Errorf("Project with absent col = %v", p2)
	}
	if tp.Project(NewCols()).Len() != 0 {
		t.Errorf("Project onto empty set nonempty")
	}
}

func TestExtendsAndMatches(t *testing.T) {
	full := schedTuple(1, 2, "R", 7)
	part := NewTuple(BindInt("ns", 1), BindString("state", "R"))
	if !full.Extends(part) {
		t.Errorf("full does not extend matching partial")
	}
	if !full.Extends(NewTuple()) {
		t.Errorf("any tuple must extend the empty tuple")
	}
	other := NewTuple(BindInt("ns", 1), BindString("state", "S"))
	if full.Extends(other) {
		t.Errorf("Extends with conflicting value")
	}
	if !full.Matches(other) == full.Extends(other) && full.Matches(other) {
		t.Errorf("Matches: disagreement on common column must be false")
	}
	// Matches allows disjoint domains.
	disj := NewTuple(BindInt("weight", 3))
	if !full.Matches(disj) {
		t.Errorf("disjoint tuples must match")
	}
	if full.Matches(other) {
		t.Errorf("tuples disagreeing on state must not match")
	}
}

func TestMergeRightBias(t *testing.T) {
	a := NewTuple(BindInt("x", 1), BindInt("y", 2))
	b := NewTuple(BindInt("y", 9), BindInt("z", 3))
	m := a.Merge(b)
	want := NewTuple(BindInt("x", 1), BindInt("y", 9), BindInt("z", 3))
	if !m.Equal(want) {
		t.Errorf("Merge = %v, want %v", m, want)
	}
	// Merge with empty is identity.
	if !a.Merge(NewTuple()).Equal(a) || !NewTuple().Merge(a).Equal(a) {
		t.Errorf("merge with empty tuple not identity")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	ts := []Tuple{
		NewTuple(BindInt("a", 1)),
		NewTuple(BindInt("a", 2)),
		NewTuple(BindInt("b", 1)),
		NewTuple(BindString("a", "1")),
		NewTuple(BindInt("a", 1), BindInt("b", 2)),
		NewTuple(BindInt("ab", 1)),
		NewTuple(),
	}
	seen := make(map[string]Tuple)
	for _, tp := range ts {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Errorf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
}

func TestCompareTuples(t *testing.T) {
	a := tupNsPid(1, 2)
	b := tupNsPid(1, 3)
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Errorf("Compare ordering wrong")
	}
}

func TestCompareDomainMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Compare on different domains did not panic")
		}
	}()
	tupNsPid(1, 2).Compare(NewTuple(BindInt("ns", 1)))
}

func TestBindingsRoundTrip(t *testing.T) {
	tp := schedTuple(3, 4, "S", 9)
	rt := NewTuple(tp.Bindings()...)
	if !rt.Equal(tp) {
		t.Errorf("Bindings round trip = %v, want %v", rt, tp)
	}
}

func TestTupleString(t *testing.T) {
	tp := NewTuple(BindInt("ns", 1), BindString("state", "R"))
	if got := tp.String(); got != `<ns: 1, state: "R">` {
		t.Errorf("String() = %q", got)
	}
}

func randTuple(r *rand.Rand) Tuple {
	pool := []string{"a", "b", "c", "d"}
	var bs []Binding
	for _, c := range pool {
		switch r.Intn(3) {
		case 0:
			bs = append(bs, BindInt(c, int64(r.Intn(3))))
		case 1:
			bs = append(bs, BindString(c, string(rune('x'+r.Intn(2)))))
		}
	}
	return NewTuple(bs...)
}

func TestTupleProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randTuple(r), randTuple(r)
		// Extends implies Matches.
		if a.Extends(b) && !a.Matches(b) {
			return false
		}
		// Matches is symmetric.
		if a.Matches(b) != b.Matches(a) {
			return false
		}
		// Merge result extends the right operand.
		if !a.Merge(b).Extends(b) {
			return false
		}
		// Merge domain is the union.
		if !a.Merge(b).Dom().Equal(a.Dom().Union(b.Dom())) {
			return false
		}
		// Projection onto own domain is identity.
		if !a.Project(a.Dom()).Equal(a) {
			return false
		}
		// Key round-trips equality.
		if (a.Key() == b.Key()) != a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestValuesKeyFixedDomain(t *testing.T) {
	// Within one domain, ValuesKey must be injective.
	a := tupNsPid(1, 2)
	b := tupNsPid(2, 1)
	if a.ValuesKey() == b.ValuesKey() {
		t.Errorf("ValuesKey collision for %v vs %v", a, b)
	}
	if a.ValuesKey() != tupNsPid(1, 2).ValuesKey() {
		t.Errorf("ValuesKey not deterministic")
	}
	_ = value.OfInt(0) // keep import for doc symmetry
}
