package relation

// Relational-algebra operators on whole relations (§2 "Relational Algebra").
// These operate on the oracle representation and are used by the abstraction
// function of decomposition instances and by tests.

// Union returns r ∪ o. Both relations must have identical columns.
func Union(r, o *Relation) *Relation {
	mustSameCols(r, o)
	out := r.Clone()
	for k, t := range o.tuples {
		out.tuples[k] = t
	}
	return out
}

// Intersect returns r ∩ o.
func Intersect(r, o *Relation) *Relation {
	mustSameCols(r, o)
	out := Empty(r.cols)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; ok {
			out.tuples[k] = t
		}
	}
	return out
}

// Diff returns r \ o.
func Diff(r, o *Relation) *Relation {
	mustSameCols(r, o)
	out := Empty(r.cols)
	for k, t := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			out.tuples[k] = t
		}
	}
	return out
}

// SymDiff returns r ⊖ o, the symmetric difference.
func SymDiff(r, o *Relation) *Relation {
	return Union(Diff(r, o), Diff(o, r))
}

// Project returns π_C(r).
func Project(r *Relation, c Cols) *Relation {
	out := Empty(c.Intersect(r.cols))
	for _, t := range r.tuples {
		p := t.Project(c)
		out.tuples[p.Key()] = p
	}
	return out
}

// Join returns the natural join r ⋈ o: tuples over the union of the two
// column sets formed from every pair of tuples that agree on all shared
// columns.
func Join(r, o *Relation) *Relation {
	out := Empty(r.cols.Union(o.cols))
	shared := r.cols.Intersect(o.cols)
	// Hash join on the shared columns; with no shared columns this is a
	// cross product through a single bucket.
	buckets := make(map[string][]Tuple)
	for _, t := range o.tuples {
		k := t.Project(shared).Key()
		buckets[k] = append(buckets[k], t)
	}
	for _, t := range r.tuples {
		k := t.Project(shared).Key()
		for _, u := range buckets[k] {
			j := t.Merge(u)
			out.tuples[j.Key()] = j
		}
	}
	return out
}

// Singleton returns the relation {t}.
func Singleton(t Tuple) *Relation {
	r := Empty(t.Dom())
	r.tuples[t.Key()] = t
	return r
}

// FromTuples builds a relation over cols containing the given tuples. Every
// tuple must be a valuation for cols; it panics otherwise, since it is used
// to construct fixtures.
func FromTuples(cols Cols, ts ...Tuple) *Relation {
	r := Empty(cols)
	for _, t := range ts {
		if err := r.Insert(t); err != nil {
			panic(err)
		}
	}
	return r
}

func mustSameCols(r, o *Relation) {
	if !r.cols.Equal(o.cols) {
		panic("relation: operands have different columns: " + r.cols.String() + " vs " + o.cols.String())
	}
}
