package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewColsDedup(t *testing.T) {
	c := NewCols("b", "a", "b", "c", "a")
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	want := []string{"a", "b", "c"}
	for i, n := range c.Names() {
		if n != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, n, want[i])
		}
	}
}

func TestColsHas(t *testing.T) {
	c := NewCols("ns", "pid", "state")
	for _, n := range []string{"ns", "pid", "state"} {
		if !c.Has(n) {
			t.Errorf("Has(%q) = false", n)
		}
	}
	if c.Has("cpu") || c.Has("") {
		t.Errorf("Has reported absent column present")
	}
}

func TestColsSetOps(t *testing.T) {
	a := NewCols("x", "y", "z")
	b := NewCols("y", "z", "w")
	if got := a.Union(b); !got.Equal(NewCols("w", "x", "y", "z")) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewCols("y", "z")) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewCols("x")) {
		t.Errorf("Minus = %v", got)
	}
	if got := a.SymDiff(b); !got.Equal(NewCols("x", "w")) {
		t.Errorf("SymDiff = %v", got)
	}
}

func TestColsSubset(t *testing.T) {
	if !NewCols().SubsetOf(NewCols("a")) {
		t.Errorf("empty not subset of {a}")
	}
	if !NewCols("a", "c").SubsetOf(NewCols("a", "b", "c")) {
		t.Errorf("{a,c} not subset of {a,b,c}")
	}
	if NewCols("a", "d").SubsetOf(NewCols("a", "b", "c")) {
		t.Errorf("{a,d} subset of {a,b,c}")
	}
}

func TestColsEmpty(t *testing.T) {
	var zero Cols
	if !zero.IsEmpty() || zero.Len() != 0 {
		t.Errorf("zero Cols not empty")
	}
	if !zero.Equal(NewCols()) {
		t.Errorf("zero != NewCols()")
	}
	if got := zero.Union(NewCols("a")); !got.Equal(NewCols("a")) {
		t.Errorf("empty ∪ {a} = %v", got)
	}
}

func TestColsKeyInjective(t *testing.T) {
	a, b := NewCols("ab", "c"), NewCols("a", "bc")
	if a.Key() == b.Key() {
		t.Errorf("Key collision between %v and %v", a, b)
	}
}

func randCols(r *rand.Rand) Cols {
	pool := []string{"a", "b", "c", "d", "e"}
	var names []string
	for _, n := range pool {
		if r.Intn(2) == 0 {
			names = append(names, n)
		}
	}
	return NewCols(names...)
}

func TestColsAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randCols(r), randCols(r), randCols(r)
		// Union commutative & associative; De Morgan-ish identities.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		if !a.Intersect(b).SubsetOf(a) {
			return false
		}
		if !a.Minus(b).Union(a.Intersect(b)).Equal(a) {
			return false
		}
		if !a.SymDiff(b).Equal(a.Union(b).Minus(a.Intersect(b))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
