package relation

import (
	"fmt"
	"sort"
	"strings"
)

// A Relation is a mutable set of tuples over identical columns (§2). This is
// the reference implementation: a hash set of tuples with the five
// operations of the paper implemented directly from their definitions. It
// serves as the oracle against which decomposition instances are verified.
type Relation struct {
	cols   Cols
	tuples map[string]Tuple // keyed by Tuple.Key()
}

// Empty implements the paper's `empty ()`: it creates a new empty relation
// over the given columns.
func Empty(cols Cols) *Relation {
	return &Relation{cols: cols, tuples: make(map[string]Tuple)}
}

// Cols returns the column set of the relation.
func (r *Relation) Cols() Cols { return r.cols }

// Len returns the number of tuples in the relation.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert implements `insert r t`: r ← !r ∪ {t}. The tuple must be a
// valuation for exactly the relation's columns.
func (r *Relation) Insert(t Tuple) error {
	if !t.Dom().Equal(r.cols) {
		return fmt.Errorf("relation: insert of tuple with columns %v into relation with columns %v", t.Dom(), r.cols)
	}
	r.tuples[t.Key()] = t
	return nil
}

// Contains reports whether the exact tuple t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.Key()]
	return ok
}

// Remove implements `remove r s`: r ← !r \ {t ∈ !r | t ⊇ s}. It returns the
// number of tuples removed. The pattern s may be partial; its domain must be
// a subset of the relation's columns.
func (r *Relation) Remove(s Tuple) int {
	n := 0
	for k, t := range r.tuples {
		if t.Extends(s) {
			delete(r.tuples, k)
			n++
		}
	}
	return n
}

// Update implements `update r s u`:
// r ← {if t ⊇ s then t ▷ u else t | t ∈ !r}. It returns the number of tuples
// rewritten. Note that like the paper's semantics it may merge tuples when u
// collapses distinct matches onto one valuation.
func (r *Relation) Update(s, u Tuple) int {
	var changed []Tuple
	for k, t := range r.tuples {
		if t.Extends(s) {
			delete(r.tuples, k)
			changed = append(changed, t.Merge(u))
		}
	}
	for _, t := range changed {
		r.tuples[t.Key()] = t
	}
	return len(changed)
}

// Query implements `query r s C`: π_C {t ∈ !r | t ⊇ s}. The result is a set:
// duplicate projections collapse. Results are returned in a deterministic
// (sorted) order to make tests reproducible.
func (r *Relation) Query(s Tuple, out Cols) []Tuple {
	seen := make(map[string]Tuple)
	for _, t := range r.tuples {
		if t.Extends(s) {
			p := t.Project(out)
			seen[p.Key()] = p
		}
	}
	res := make([]Tuple, 0, len(seen))
	for _, t := range seen {
		res = append(res, t)
	}
	SortTuples(res)
	return res
}

// All returns every tuple in the relation in deterministic order.
func (r *Relation) All() []Tuple {
	res := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		res = append(res, t)
	}
	SortTuples(res)
	return res
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := Empty(r.cols)
	for k, t := range r.tuples {
		c.tuples[k] = t
	}
	return c
}

// Equal reports whether r and o contain exactly the same tuples.
func (r *Relation) Equal(o *Relation) bool {
	if len(r.tuples) != len(o.tuples) {
		return false
	}
	for k := range r.tuples {
		if _, ok := o.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// String renders the relation's tuples, one per line, in sorted order.
func (r *Relation) String() string {
	var sb strings.Builder
	for _, t := range r.All() {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SortTuples sorts a slice of same-domain tuples in place into canonical
// order. Tuples with differing domains sort by their canonical key, so mixed
// slices are still deterministic.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Dom().Equal(ts[j].Dom()) {
			return ts[i].Compare(ts[j]) < 0
		}
		return ts[i].Key() < ts[j].Key()
	})
}
