package gen_test

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/codegen"
	"repro/internal/dsl"
	"repro/internal/vet"
)

// TestGeneratedPackagesUpToDate regenerates every spec/*.rel with the
// in-tree compiler and verifies the checked-in packages match, so the
// generated code can never drift from the specifications.
func TestGeneratedPackagesUpToDate(t *testing.T) {
	specs, err := filepath.Glob("../../spec/*.rel")
	if err != nil || len(specs) == 0 {
		t.Fatalf("no spec files found: %v", err)
	}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		file, err := dsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, nd := range file.Decomps {
			files, err := codegen.Generate(nd.For, nd.D, codegen.Options{Package: nd.Name, Ops: nd.Ops})
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for fname, want := range files {
				got, err := os.ReadFile(filepath.Join(nd.Name, fname))
				if err != nil {
					t.Fatalf("%s: checked-in file missing: %v", path, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s: %s is stale; rerun `go run ./cmd/relc -o internal/gen %s`", path, fname, path)
				}
			}
		}
	}
}

// TestGeneratedCodeGofmtIdempotent holds every generated file to the
// relvet105 formatting contract: running gofmt over the compiler's output
// must be a no-op, byte for byte.
func TestGeneratedCodeGofmtIdempotent(t *testing.T) {
	forEachGenerated(t, func(t *testing.T, name string, content []byte) {
		formatted, err := format.Source(content)
		if err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if !bytes.Equal(formatted, content) {
			t.Errorf("%s is not gofmt-idempotent", name)
		}
	})
}

// TestGeneratedCodeAnalyzerClean type-checks every generated file in
// memory and runs the relvet1xx analyzers over it: the compiler must not
// emit code the vet suite would flag in a client (the rest of relvet105).
func TestGeneratedCodeAnalyzerClean(t *testing.T) {
	forEachGenerated(t, func(t *testing.T, name string, content []byte) {
		pkg, err := analysis.CheckSource("../..", name, content, "./...")
		if err != nil {
			t.Fatalf("%s does not type-check: %v", name, err)
		}
		for _, d := range analysis.Run([]*analysis.Package{pkg}, vet.Analyzers()) {
			t.Errorf("%s: %v", name, d)
		}
	})
}

// forEachGenerated regenerates every decomposition in spec/*.rel and hands
// each output file to f.
func forEachGenerated(t *testing.T, f func(t *testing.T, name string, content []byte)) {
	t.Helper()
	specs, err := filepath.Glob("../../spec/*.rel")
	if err != nil || len(specs) == 0 {
		t.Fatalf("no spec files found: %v", err)
	}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		file, err := dsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, nd := range file.Decomps {
			files, err := codegen.Generate(nd.For, nd.D, codegen.Options{Package: nd.Name, Ops: nd.Ops})
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for fname, content := range files {
				t.Run(nd.Name+"/"+fname, func(t *testing.T) {
					f(t, nd.Name+"/"+fname, content)
				})
			}
		}
	}
}
