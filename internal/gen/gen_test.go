package gen_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/codegen"
	"repro/internal/dsl"
)

// TestGeneratedPackagesUpToDate regenerates every spec/*.rel with the
// in-tree compiler and verifies the checked-in packages match, so the
// generated code can never drift from the specifications.
func TestGeneratedPackagesUpToDate(t *testing.T) {
	specs, err := filepath.Glob("../../spec/*.rel")
	if err != nil || len(specs) == 0 {
		t.Fatalf("no spec files found: %v", err)
	}
	for _, path := range specs {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		file, err := dsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, nd := range file.Decomps {
			files, err := codegen.Generate(nd.For, nd.D, codegen.Options{Package: nd.Name, Ops: nd.Ops})
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			for fname, want := range files {
				got, err := os.ReadFile(filepath.Join(nd.Name, fname))
				if err != nil {
					t.Fatalf("%s: checked-in file missing: %v", path, err)
				}
				if string(got) != string(want) {
					t.Errorf("%s: %s is stale; rerun `go run ./cmd/relc -o internal/gen %s`", path, fname, path)
				}
			}
		}
	}
}
