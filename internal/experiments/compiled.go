package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/workload"
)

// CompiledConfig scales the compiled-vs-interpreted comparison.
type CompiledConfig struct {
	// Scale multiplies every workload size; 1 ≈ a second or two total.
	Scale int
}

// DefaultCompiledConfig returns the laptop-scale defaults.
func DefaultCompiledConfig() CompiledConfig { return CompiledConfig{Scale: 1} }

// CompiledRow is one workload's outcome under the three execution tiers.
// The same engine, decomposition, and plans run in every column; the only
// difference is whether promoted plans execute on the plan interpreter, as
// compiled closure programs, or as vectorized batch programs with the
// closure tier as fallback.
type CompiledRow struct {
	Workload     string
	InterpSecs   float64
	CompiledSecs float64
	VecSecs      float64
	Agree        bool // identical checksums across all tiers
}

// Speedup is interpreted time over compiled time.
func (r CompiledRow) Speedup() float64 {
	if r.CompiledSecs == 0 {
		return 0
	}
	return r.InterpSecs / r.CompiledSecs
}

// VecSpeedup is compiled (closure-tier) time over vectorized time — the
// acceptance metric of the batch tier.
func (r CompiledRow) VecSpeedup() float64 {
	if r.VecSecs == 0 {
		return 0
	}
	return r.CompiledSecs / r.VecSecs
}

// RunCompiled measures the execution tiers against each other on three
// workload shapes: the scheduler's mixed query/update trace, a scan-heavy
// successor sweep, and full-relation enumeration through Query's collect
// path. Each workload runs three times on fresh relations that differ only
// in the CompilePrograms/Vectorize switches, and must produce identical
// checksums — the differential guarantee, measured at workload scale.
func RunCompiled(cfg CompiledConfig) ([]CompiledRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rows := make([]CompiledRow, 0, 3)
	for _, w := range []struct {
		name string
		run  func(r *core.Relation) (int64, error)
	}{
		{"scheduler trace", schedulerTraceWork(cfg.Scale)},
		{"graph successors", graphSuccessorWork(cfg.Scale)},
		{"graph enumerate", graphEnumerateWork(cfg.Scale)},
	} {
		row := CompiledRow{Workload: w.name}
		var sums [3]int64
		for i, mode := range []struct {
			name      string
			compile   bool
			vectorize bool
			secs      *float64
		}{
			{"interpreted", false, false, &row.InterpSecs},
			{"compiled", true, false, &row.CompiledSecs},
			{"vectorized", true, true, &row.VecSecs},
		} {
			r, err := newCompiledBenchRelation(w.name)
			if err != nil {
				return nil, err
			}
			r.CompilePrograms = mode.compile
			r.Vectorize = mode.vectorize
			start := time.Now()
			sum, err := w.run(r)
			if err != nil {
				return nil, fmt.Errorf("%s (%s): %w", w.name, mode.name, err)
			}
			*mode.secs = time.Since(start).Seconds()
			sums[i] = sum
		}
		row.Agree = sums[0] == sums[1] && sums[1] == sums[2]
		rows = append(rows, row)
	}
	return rows, nil
}

func newCompiledBenchRelation(workload string) (*core.Relation, error) {
	if workload == "scheduler trace" {
		return core.New(SchedulerSpec(), paperex.SchedulerDecomp())
	}
	return core.New(GraphSpec(), paperex.GraphDecomp5())
}

// schedulerTraceWork replays the §6.1 scheduler trace — point updates,
// keyed lookups, and state/namespace scans — and returns its checksum.
func schedulerTraceWork(scale int) func(r *core.Relation) (int64, error) {
	ops := workload.SchedulerTrace(60_000*scale, 8, 200, 17)
	return func(r *core.Relation) (int64, error) {
		_, checksum, err := RunSchedulerBench(r, ops)
		return checksum, err
	}
}

// graphSuccessorWork loads a road network and repeatedly streams every
// node's successor list — the pure scan shape where per-row dispatch cost
// dominates and the compiled tier helps most.
func graphSuccessorWork(scale int) func(r *core.Relation) (int64, error) {
	const gridN = 24
	edges := workload.RoadNetwork(gridN, 11)
	nodes := workload.NodeCount(gridN)
	return func(r *core.Relation) (int64, error) {
		for _, e := range edges {
			if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
				return 0, err
			}
		}
		r.Reprofile()
		var checksum int64
		for round := 0; round < 60*scale; round++ {
			for v := 0; v < nodes; v++ {
				err := r.QueryFunc(relation.NewTuple(relation.BindInt("src", int64(v))),
					[]string{"dst", "weight"}, func(t relation.Tuple) bool {
						checksum += t.MustGet("dst").Int() + t.MustGet("weight").Int()
						return true
					})
				if err != nil {
					return 0, err
				}
			}
		}
		return checksum, nil
	}
}

// graphEnumerateWork exercises Query's materializing collect path — fused
// projection + dedup in the compiled tier — by repeatedly enumerating a
// two-column projection of the whole edge relation.
func graphEnumerateWork(scale int) func(r *core.Relation) (int64, error) {
	const gridN = 24
	edges := workload.RoadNetwork(gridN, 11)
	return func(r *core.Relation) (int64, error) {
		for _, e := range edges {
			if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
				return 0, err
			}
		}
		r.Reprofile()
		var checksum int64
		for round := 0; round < 40*scale; round++ {
			res, err := r.Query(relation.NewTuple(), []string{"src", "dst"})
			if err != nil {
				return 0, err
			}
			for _, t := range res {
				checksum += t.MustGet("src").Int() ^ t.MustGet("dst").Int()
			}
		}
		return checksum, nil
	}
}
