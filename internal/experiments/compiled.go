package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/workload"
)

// CompiledConfig scales the compiled-vs-interpreted comparison.
type CompiledConfig struct {
	// Scale multiplies every workload size; 1 ≈ a second or two total.
	Scale int
}

// DefaultCompiledConfig returns the laptop-scale defaults.
func DefaultCompiledConfig() CompiledConfig { return CompiledConfig{Scale: 1} }

// CompiledRow is one workload's outcome under both execution tiers. The
// same engine, decomposition, and plans run in both columns; the only
// difference is whether promoted plans execute as compiled closure
// programs or on the plan interpreter.
type CompiledRow struct {
	Workload     string
	InterpSecs   float64
	CompiledSecs float64
	Agree        bool // identical checksums across both tiers
}

// Speedup is interpreted time over compiled time.
func (r CompiledRow) Speedup() float64 {
	if r.CompiledSecs == 0 {
		return 0
	}
	return r.InterpSecs / r.CompiledSecs
}

// RunCompiled measures the compiled execution tier against the interpreter
// on three workload shapes: the scheduler's mixed query/update trace, a
// scan-heavy successor sweep, and full-relation enumeration through
// Query's collect path. Each workload runs twice on fresh relations that
// differ only in the CompilePrograms switch, and must produce identical
// checksums — the differential guarantee, measured at workload scale.
func RunCompiled(cfg CompiledConfig) ([]CompiledRow, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	rows := make([]CompiledRow, 0, 3)
	for _, w := range []struct {
		name string
		run  func(r *core.Relation) (int64, error)
	}{
		{"scheduler trace", schedulerTraceWork(cfg.Scale)},
		{"graph successors", graphSuccessorWork(cfg.Scale)},
		{"graph enumerate", graphEnumerateWork(cfg.Scale)},
	} {
		row := CompiledRow{Workload: w.name}
		var sums [2]int64
		for i, compile := range []bool{false, true} {
			r, err := newCompiledBenchRelation(w.name)
			if err != nil {
				return nil, err
			}
			r.CompilePrograms = compile
			start := time.Now()
			sum, err := w.run(r)
			if err != nil {
				return nil, fmt.Errorf("%s (compile=%v): %w", w.name, compile, err)
			}
			secs := time.Since(start).Seconds()
			sums[i] = sum
			if compile {
				row.CompiledSecs = secs
			} else {
				row.InterpSecs = secs
			}
		}
		row.Agree = sums[0] == sums[1]
		rows = append(rows, row)
	}
	return rows, nil
}

func newCompiledBenchRelation(workload string) (*core.Relation, error) {
	if workload == "scheduler trace" {
		return core.New(SchedulerSpec(), paperex.SchedulerDecomp())
	}
	return core.New(GraphSpec(), paperex.GraphDecomp5())
}

// schedulerTraceWork replays the §6.1 scheduler trace — point updates,
// keyed lookups, and state/namespace scans — and returns its checksum.
func schedulerTraceWork(scale int) func(r *core.Relation) (int64, error) {
	ops := workload.SchedulerTrace(60_000*scale, 8, 200, 17)
	return func(r *core.Relation) (int64, error) {
		_, checksum, err := RunSchedulerBench(r, ops)
		return checksum, err
	}
}

// graphSuccessorWork loads a road network and repeatedly streams every
// node's successor list — the pure scan shape where per-row dispatch cost
// dominates and the compiled tier helps most.
func graphSuccessorWork(scale int) func(r *core.Relation) (int64, error) {
	const gridN = 24
	edges := workload.RoadNetwork(gridN, 11)
	nodes := workload.NodeCount(gridN)
	return func(r *core.Relation) (int64, error) {
		for _, e := range edges {
			if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
				return 0, err
			}
		}
		r.Reprofile()
		var checksum int64
		for round := 0; round < 60*scale; round++ {
			for v := 0; v < nodes; v++ {
				err := r.QueryFunc(relation.NewTuple(relation.BindInt("src", int64(v))),
					[]string{"dst", "weight"}, func(t relation.Tuple) bool {
						checksum += t.MustGet("dst").Int() + t.MustGet("weight").Int()
						return true
					})
				if err != nil {
					return 0, err
				}
			}
		}
		return checksum, nil
	}
}

// graphEnumerateWork exercises Query's materializing collect path — fused
// projection + dedup in the compiled tier — by repeatedly enumerating a
// two-column projection of the whole edge relation.
func graphEnumerateWork(scale int) func(r *core.Relation) (int64, error) {
	const gridN = 24
	edges := workload.RoadNetwork(gridN, 11)
	return func(r *core.Relation) (int64, error) {
		for _, e := range edges {
			if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
				return 0, err
			}
		}
		r.Reprofile()
		var checksum int64
		for round := 0; round < 40*scale; round++ {
			res, err := r.Query(relation.NewTuple(), []string{"src", "dst"})
			if err != nil {
				return 0, err
			}
			for _, t := range res {
				checksum += t.MustGet("src").Int() ^ t.MustGet("dst").Int()
			}
		}
		return checksum, nil
	}
}
