package experiments_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dstruct"
	"repro/internal/experiments"
	"repro/internal/paperex"
	"repro/internal/workload"
)

func TestRunGraphBenchCorrectAcrossDecomps(t *testing.T) {
	edges := workload.RoadNetwork(8, 3)
	nodes := workload.NodeCount(8)
	for name, d := range experiments.Fig12() {
		r, err := core.New(experiments.GraphSpec(), d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		times, err := experiments.RunGraphBench(r, edges, nodes, time.Time{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if times.F < 0 || times.FB < times.F || times.FBD < times.FB {
			t.Errorf("%s: non-monotone phase times %+v", name, times)
		}
		if r.Len() != 0 {
			t.Errorf("%s: %d edges left after deletion phase", name, r.Len())
		}
	}
}

func TestRunGraphBenchTimesOut(t *testing.T) {
	edges := workload.RoadNetwork(16, 3)
	r, err := core.New(experiments.GraphSpec(), paperex.GraphDecomp1())
	if err != nil {
		t.Fatal(err)
	}
	_, err = experiments.RunGraphBench(r, edges, workload.NodeCount(16), time.Now().Add(-time.Second))
	if err == nil {
		t.Errorf("expired deadline not honoured")
	}
}

func TestFig11Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	cfg := experiments.Fig11Config{
		GridN:          8,
		Seed:           5,
		MaxEdges:       2, // keep the sweep tiny: a handful of shapes
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 4,
		Timeout:        300 * time.Millisecond,
	}
	rows, err := experiments.Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	okRows := 0
	lastF := -1.0
	for _, row := range rows {
		if row.Failed {
			continue
		}
		okRows++
		if row.Times.F < lastF {
			t.Errorf("rows not ranked by F time")
		}
		lastF = row.Times.F
		if row.Times.FB >= 0 && row.Times.FB < row.Times.F {
			t.Errorf("cumulative times not monotone: %+v", row.Times)
		}
	}
	if okRows == 0 {
		t.Fatalf("every shape failed")
	}
}

func TestFig13Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	cfg := experiments.Fig13Config{
		Packets:        2000,
		LocalHosts:     8,
		ForeignHosts:   32,
		Seed:           7,
		FlushEvery:     1000,
		MaxEdges:       2,
		Palette:        []dstruct.Kind{dstruct.HTableKind},
		MaxAssignments: 2,
		Timeout:        2 * time.Second,
	}
	rows, err := experiments.Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	for _, row := range rows {
		if !row.Failed {
			ok++
			if row.Seconds <= 0 {
				t.Errorf("nonpositive time for finished row")
			}
		}
	}
	if ok == 0 {
		t.Fatalf("every decomposition failed")
	}
}

func TestTable1(t *testing.T) {
	rows, err := experiments.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Original <= 0 || row.SynthModule <= 0 || row.Decomposition <= 0 {
			t.Errorf("%s: zero counts %+v", row.System, row)
		}
		// The paper's qualitative claim is that the decomposition file is
		// small in absolute terms (tens of lines). Unlike the paper's C
		// baselines, Go's built-in maps make some hand-coded modules tiny
		// too, so no relative assertion is made here; EXPERIMENTS.md
		// discusses the comparison.
		if row.Decomposition > 100 {
			t.Errorf("%s: decomposition file unexpectedly large (%d lines)", row.System, row.Decomposition)
		}
	}
}

func TestCountNonCommentLines(t *testing.T) {
	src := []byte(`package x

// a comment
/* block
   comment */
func f() int { // trailing comment
	return 1 /* inline */ + 2
}
`)
	if got := experiments.CountNonCommentLines(src); got != 4 {
		t.Errorf("counted %d lines, want 4", got)
	}
}

func TestSchedulerBenchChecksumStable(t *testing.T) {
	ops := workload.SchedulerTrace(3000, 3, 40, 31)
	var checksums []int64
	decomps := map[string]func() *core.Relation{
		"figure2": func() *core.Relation {
			return core.MustNew(experiments.SchedulerSpec(), paperex.SchedulerDecomp())
		},
	}
	for name, mk := range decomps {
		r := mk()
		_, sum, err := experiments.RunSchedulerBench(r, ops)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checksums = append(checksums, sum)
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Against the oracle-backed flat representation.
	flat := core.MustNew(experiments.SchedulerSpec(), flatSchedulerDecomp())
	_, want, err := experiments.RunSchedulerBench(flat, ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, sum := range checksums {
		if sum != want {
			t.Errorf("checksum %d = %d, want %d", i, sum, want)
		}
	}
}

func TestRunParity(t *testing.T) {
	if testing.Short() {
		t.Skip("parity run takes a few seconds")
	}
	rows, err := experiments.RunParity(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if !row.Agree {
			t.Errorf("%s: variants disagree", row.System)
		}
		if row.HandSecs <= 0 || row.SynthSecs <= 0 {
			t.Errorf("%s: missing timings %+v", row.System, row)
		}
	}
}
