package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/systems/ipcap"
)

// ConcurrentEngine is the operation subset the throughput experiment
// drives; core.SyncRelation and core.ShardedRelation both implement it.
type ConcurrentEngine interface {
	Insert(t relation.Tuple) error
	Update(s, u relation.Tuple) (int, error)
	Query(pat relation.Tuple, out []string) ([]relation.Tuple, error)
	Len() int
}

// ShardedConfig parameterizes the sharded-throughput experiment.
type ShardedConfig struct {
	Flows      int   // distinct flows preloaded into each engine
	Ops        int   // operations per (engine, goroutine-count) cell
	ReadPct    int   // percentage of keyed reads; the rest are keyed updates
	Shards     int   // shard count for the sharded engine
	Goroutines []int // goroutine counts to sweep
	Seed       int64
}

// DefaultShardedConfig mirrors the acceptance workload: 90/10 keyed
// read/write over the IpCap flow relation.
func DefaultShardedConfig() ShardedConfig {
	return ShardedConfig{
		Flows:      20_000,
		Ops:        200_000,
		ReadPct:    90,
		Shards:     core.DefaultShards,
		Goroutines: []int{1, 2, 4, 8},
		Seed:       41,
	}
}

// ShardedRow is one cell of the throughput table.
type ShardedRow struct {
	Engine     string
	Goroutines int
	Seconds    float64
	OpsPerSec  float64
}

// RunSharded measures mixed keyed read/write throughput of the
// coarse-locked SyncRelation against the ShardedRelation across goroutine
// counts, on the IpCap flow relation (local, foreign → packets, bytes).
// Each goroutine works a disjoint slice of the preloaded flow keys, so runs
// are comparable and FD-safe regardless of interleaving.
func RunSharded(cfg ShardedConfig) ([]ShardedRow, error) {
	mkSync := func() (ConcurrentEngine, error) {
		r, err := core.New(ipcap.FlowSpec(), ipcap.DefaultFlowDecomp())
		if err != nil {
			return nil, err
		}
		return core.NewSync(r), nil
	}
	mkSharded := func() (ConcurrentEngine, error) {
		return core.NewSharded(ipcap.FlowSpec(), ipcap.DefaultFlowDecomp(), core.ShardOptions{
			ShardKey: []string{"local", "foreign"},
			Shards:   cfg.Shards,
		})
	}
	var rows []ShardedRow
	for _, eng := range []struct {
		name string
		mk   func() (ConcurrentEngine, error)
	}{
		{"SyncRelation", mkSync},
		{"ShardedRelation", mkSharded},
	} {
		for _, g := range cfg.Goroutines {
			e, err := eng.mk()
			if err != nil {
				return nil, err
			}
			if err := PreloadFlows(e, cfg.Flows); err != nil {
				return nil, err
			}
			secs, err := DriveMixed(e, cfg.Ops, g, cfg.ReadPct, cfg.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ShardedRow{
				Engine:     eng.name,
				Goroutines: g,
				Seconds:    secs,
				OpsPerSec:  float64(cfg.Ops) / secs,
			})
		}
	}
	return rows, nil
}

// PreloadFlows fills the engine with n distinct flows. The sharded engine
// takes its batched path when available.
func PreloadFlows(e ConcurrentEngine, n int) error {
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = FlowTuple(int64(i))
	}
	if sr, ok := e.(*core.ShardedRelation); ok {
		return sr.InsertBatch(tuples)
	}
	for _, t := range tuples {
		if err := e.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// FlowTuple returns the i-th synthetic flow tuple of the throughput
// workload; FlowKeyPattern returns its key pattern.
func FlowTuple(i int64) relation.Tuple {
	return FlowKeyPattern(i).Merge(relation.NewTuple(
		relation.BindInt("packets", 1),
		relation.BindInt("bytes", 64),
	))
}

// FlowKeyPattern returns the key pattern of the i-th synthetic flow.
func FlowKeyPattern(i int64) relation.Tuple {
	return relation.NewTuple(
		relation.BindInt("local", 10<<24|i%256),
		relation.BindInt("foreign", 203<<24|i),
	)
}

// mixedOp is one pregenerated operation of the mixed workload.
type mixedOp struct {
	key  relation.Tuple
	upd  relation.Tuple // zero Tuple means the op is a read
	read bool
}

// DriveMixed runs ops operations split across g goroutines: readPct% keyed
// point queries and the rest keyed updates, over a per-goroutine slice of
// the key space. The operation stream — key patterns, update tuples, and the
// read/write coin flips — is generated before the clock starts, so the
// measured region contains only engine work, not tuple construction or rng
// calls. It returns the wall-clock seconds for the whole batch.
func DriveMixed(e ConcurrentEngine, ops, g, readPct int, seed int64) (float64, error) {
	n := 0
	if l := e.Len(); l > 0 {
		n = l
	} else {
		return 0, fmt.Errorf("experiments: engine not preloaded")
	}
	perWorker := ops / g
	work := make([][]mixedOp, g)
	for w := 0; w < g; w++ {
		rng := rand.New(rand.NewSource(seed + int64(w)))
		lo, width := w*(n/g), n/g
		work[w] = make([]mixedOp, perWorker)
		for i := range work[w] {
			op := &work[w][i]
			op.key = FlowKeyPattern(int64(lo + rng.Intn(width)))
			op.read = rng.Intn(100) < readPct
			if !op.read {
				op.upd = relation.NewTuple(
					relation.BindInt("packets", int64(i)),
					relation.BindInt("bytes", int64(i)*64),
				)
			}
		}
	}
	out := []string{"bytes", "packets"}
	var wg sync.WaitGroup
	errs := make([]error, g)
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work[w] {
				op := &work[w][i]
				if op.read {
					if _, err := e.Query(op.key, out); err != nil {
						errs[w] = err
						return
					}
				} else {
					if _, err := e.Update(op.key, op.upd); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return secs, nil
}
