package experiments

import "testing"

// TestRunDurableSmall runs the durable sweep at a toy scale and checks
// the rows carry the shape the tables print: one append row per fsync
// policy with SyncAlways fsyncing at least once per op, and recovery rows
// where a mid-log checkpoint replays roughly half the tail and every
// recovered relation holds all inserted tuples.
func TestRunDurableSmall(t *testing.T) {
	cfg := DurableConfig{Ops: 60, RecoverOps: []int{40}}
	res, err := RunDurable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Appends) != 3 {
		t.Fatalf("want 3 append rows (one per policy), got %d", len(res.Appends))
	}
	for _, r := range res.Appends {
		if r.OpsPerSec <= 0 || r.WalBytes == 0 {
			t.Errorf("policy %s: degenerate row %+v", r.Policy, r)
		}
		if r.Policy == "always" && r.Fsyncs < uint64(cfg.Ops) {
			t.Errorf("SyncAlways fsynced %d times for %d ops", r.Fsyncs, cfg.Ops)
		}
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("want 2 recovery rows (plain and checkpointed), got %d", len(res.Recoveries))
	}
	for _, r := range res.Recoveries {
		if r.Tuples != 40 {
			t.Errorf("recovery (ckpt=%v) holds %d tuples, want 40", r.Checkpointed, r.Tuples)
		}
		if r.Checkpointed && r.Replayed >= 40 {
			t.Errorf("checkpoint did not bound replay: %d commits replayed", r.Replayed)
		}
		if !r.Checkpointed && r.Replayed != 40 {
			t.Errorf("plain recovery replayed %d commits, want 40", r.Replayed)
		}
	}
}
