package experiments_test

import (
	"repro/internal/decomp"
	"repro/internal/dstruct"
)

// flatSchedulerDecomp is a trivially correct single-index representation
// used as the behavioural baseline in checksum tests.
func flatSchedulerDecomp() *decomp.Decomp {
	return decomp.MustNew([]decomp.Binding{
		decomp.Let("w", []string{"ns", "pid"}, []string{"state", "cpu"},
			decomp.U("state", "cpu")),
		decomp.Let("root", nil, []string{"ns", "pid", "state", "cpu"},
			decomp.M(dstruct.AVLKind, "w", "ns", "pid")),
	}, "root")
}
