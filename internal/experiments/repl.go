package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/repl"
	"repro/internal/wal"
)

// The repl experiment measures what log shipping costs and how a replica
// behaves under load: end-to-end ship throughput (primary mutation to
// replica apply), catch-up replay throughput for both recovery paths
// (tail replay after a partition, snapshot bootstrap for a fresh
// replica), and the replication lag a 90/10 read/write mix sustains.

// ReplConfig sizes the replication experiment.
type ReplConfig struct {
	ShipOps  int // records in the ship and catch-up sweeps
	MixedOps int // operations in the mixed-load lag phase
	ReadPct  int // percentage of replica reads in the mixed phase
}

// DefaultReplConfig keeps the sweep quick enough for a laptop run.
func DefaultReplConfig() ReplConfig {
	return ReplConfig{ShipOps: 5000, MixedOps: 20000, ReadPct: 90}
}

// ReplShipRow is the end-to-end streaming measurement: a connected
// follower applying the primary's write stream as it is produced.
type ReplShipRow struct {
	Ops           int
	Seconds       float64
	RecordsPerSec float64
	WireBytes     uint64
}

// ReplCatchUpRow is one recovery-path measurement: how fast a follower
// that fell behind (tail replay) or started empty (snapshot bootstrap)
// reaches the acknowledged head.
type ReplCatchUpRow struct {
	Mode          string // "tail-replay" or "snapshot-bootstrap"
	Records       uint64 // commit records (or snapshot tuples) applied
	Seconds       float64
	RecordsPerSec float64
}

// ReplLagRow summarizes the mixed-load phase: replica reads racing the
// primary's writes, with the repl.lag gauge sampled after every write.
type ReplLagRow struct {
	Writes   int
	Reads    int
	MaxLag   uint64
	FinalLag uint64 // lag when the writer stopped, before the final drain
	Seconds  float64
}

// ReplResult is the full replication experiment.
type ReplResult struct {
	Ship     ReplShipRow
	CatchUps []ReplCatchUpRow
	Lag      ReplLagRow
}

const replExpWait = 60 * time.Second

// gateDialer wraps the in-process dialer with a switch the experiment
// uses to keep the follower dark while the primary writes ahead.
type gateDialer struct {
	inner repl.Dialer
	mu    sync.Mutex
	shut  bool
	cur   io.Closer
}

func (g *gateDialer) dial() (io.ReadWriteCloser, error) {
	g.mu.Lock()
	shut := g.shut
	g.mu.Unlock()
	if shut {
		return nil, fmt.Errorf("repl experiment: link is down")
	}
	c, err := g.inner()
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.cur = c
	g.mu.Unlock()
	return c, nil
}

// sever closes the live connection and refuses redials until restore.
func (g *gateDialer) sever() {
	g.mu.Lock()
	g.shut = true
	cur := g.cur
	g.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}

func (g *gateDialer) restore() {
	g.mu.Lock()
	g.shut = false
	g.mu.Unlock()
}

// RunRepl runs the ship, catch-up, and mixed-load lag measurements.
func RunRepl(cfg ReplConfig) (*ReplResult, error) {
	d, dir, err := openDurableDir(&obs.Metrics{}, wal.SyncOff)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	defer d.Close()

	pm := &obs.Metrics{}
	pub, err := repl.NewPublisher(d, repl.PublisherOptions{Retain: 1 << 22, Metrics: pm})
	if err != nil {
		return nil, err
	}
	defer pub.Close()
	gd := &gateDialer{inner: repl.InProcDialer(pub)}
	fm := &obs.Metrics{}
	fol, err := repl.NewFollower(durableFlowSpec(), gd.dial, repl.FollowerOptions{
		Decomp:  durableFlowDecomp(),
		Metrics: fm,
		Backoff: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer fol.Close()
	if err := fol.WaitFor(1, replExpWait); err != nil {
		return nil, fmt.Errorf("repl experiment attach: %w", err)
	}
	res := &ReplResult{}

	// Ship throughput: the follower applies the stream as it is written.
	start := time.Now()
	for i := 0; i < cfg.ShipOps; i++ {
		if err := d.Insert(durableTuple(i)); err != nil {
			return nil, fmt.Errorf("ship phase op %d: %w", i, err)
		}
	}
	if err := fol.WaitFor(pub.Head(), replExpWait); err != nil {
		return nil, fmt.Errorf("ship phase drain: %w", err)
	}
	secs := time.Since(start).Seconds()
	res.Ship = ReplShipRow{
		Ops:           cfg.ShipOps,
		Seconds:       secs,
		RecordsPerSec: float64(cfg.ShipOps) / secs,
		WireBytes:     pm.Snapshot().ReplBytes,
	}

	// Tail replay: sever the link, write the same volume dark, and time
	// the reconnected follower's catch-up from its own applied count.
	gd.sever()
	for i := 0; i < cfg.ShipOps; i++ {
		if err := d.Insert(durableTuple(cfg.ShipOps + i)); err != nil {
			return nil, fmt.Errorf("dark phase op %d: %w", i, err)
		}
	}
	behind := pub.Head() - fol.Applied()
	gd.restore()
	start = time.Now()
	if err := fol.WaitFor(pub.Head(), replExpWait); err != nil {
		return nil, fmt.Errorf("tail replay: %w", err)
	}
	secs = time.Since(start).Seconds()
	res.CatchUps = append(res.CatchUps, ReplCatchUpRow{
		Mode:          "tail-replay",
		Records:       behind,
		Seconds:       secs,
		RecordsPerSec: float64(behind) / secs,
	})

	// Snapshot bootstrap: a fresh follower against the now-full primary.
	start = time.Now()
	boot, err := repl.NewFollower(durableFlowSpec(), repl.InProcDialer(pub), repl.FollowerOptions{
		Decomp:  durableFlowDecomp(),
		Backoff: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer boot.Close()
	if err := boot.WaitFor(pub.Head(), replExpWait); err != nil {
		return nil, fmt.Errorf("snapshot bootstrap: %w", err)
	}
	secs = time.Since(start).Seconds()
	tuples := uint64(boot.Len())
	res.CatchUps = append(res.CatchUps, ReplCatchUpRow{
		Mode:          "snapshot-bootstrap",
		Records:       tuples,
		Seconds:       secs,
		RecordsPerSec: float64(tuples) / secs,
	})

	// Mixed load: replica reads race primary writes; the repl.lag gauge
	// is sampled after every write.
	keys := 2 * cfg.ShipOps
	writes, reads := 0, 0
	var maxLag uint64
	start = time.Now()
	for i := 0; i < cfg.MixedOps; i++ {
		if i%100 < cfg.ReadPct {
			pat := relation.NewTuple(relation.BindInt("local", int64(i*7919%1024)))
			if _, err := fol.Query(pat, []string{"foreign", "bytes"}); err != nil {
				return nil, fmt.Errorf("mixed phase read %d: %w", i, err)
			}
			reads++
			continue
		}
		j := i * 7919 % keys
		key := relation.NewTuple(
			relation.BindInt("local", int64(j%1024)),
			relation.BindInt("foreign", int64(j)),
		)
		upd := relation.NewTuple(relation.BindInt("bytes", int64(i)))
		if _, err := d.Update(key, upd); err != nil {
			return nil, fmt.Errorf("mixed phase write %d: %w", i, err)
		}
		writes++
		if lag := fol.Lag(); lag > maxLag {
			maxLag = lag
		}
	}
	final := fol.Lag()
	secs = time.Since(start).Seconds()
	if err := fol.WaitFor(pub.Head(), replExpWait); err != nil {
		return nil, fmt.Errorf("mixed phase drain: %w", err)
	}
	res.Lag = ReplLagRow{Writes: writes, Reads: reads, MaxLag: maxLag, FinalLag: final, Seconds: secs}
	return res, nil
}
