// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the graph micro-benchmark sweep of Figure 11, the
// representative decompositions of Figure 12, the IpCap sweep of Figure 13,
// and the lines-of-code comparison of Table 1. cmd/paperbench formats the
// results; the root bench_test.go drives reduced-scale versions under
// `go test -bench`.
package experiments

import (
	"math"
	"runtime"
	"time"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/workload"
)

// GraphSpec is the edge relation of §6.1: edges(src, dst, weight) with
// src, dst → weight.
func GraphSpec() *core.Spec {
	return &core.Spec{
		Name: "edges",
		Columns: []core.ColDef{
			{Name: "src", Type: core.IntCol},
			{Name: "dst", Type: core.IntCol},
			{Name: "weight", Type: core.IntCol},
		},
		FDs: paperex.GraphFDs(),
	}
}

// GraphTimes holds the cumulative phase times of one graph benchmark run:
// construct + forward DFS (F), plus backward DFS (FB), plus edge-by-edge
// deletion (FBD), in seconds. A negative value means the phase did not
// finish before the deadline.
type GraphTimes struct {
	F, FB, FBD float64
}

const deadlineCheckEvery = 256

// RunGraphBench runs the paper's graph benchmark on an edge relation: load
// the graph, depth-first search forward over the whole graph, depth-first
// search backward, then delete every edge one at a time (§6.1). It returns
// cumulative times per phase; on deadline expiry the remaining phases are
// reported as unfinished (-1) with autotuner.ErrTimeout.
func RunGraphBench(r *core.Relation, edges []workload.GraphEdge, nodes int, deadline time.Time) (GraphTimes, error) {
	times := GraphTimes{F: -1, FB: -1, FBD: -1}
	start := time.Now()
	ops := 0
	expired := func() bool {
		ops++
		if ops%deadlineCheckEvery != 0 || deadline.IsZero() {
			return false
		}
		return time.Now().After(deadline)
	}

	for _, e := range edges {
		if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
			return times, err
		}
		if expired() {
			return times, autotuner.ErrTimeout
		}
	}

	// Re-plan with fanouts measured from the loaded graph (§4.3: counts
	// "recorded as part of a profiling run"). Without it the uniform
	// default statistics tie scan-then-lookup against lookup-then-scan and
	// the traversal queries can land on the quadratic side of the tie.
	r.Reprofile()

	// Forward DFS over the whole graph, per the client code in §6.1.
	dfs := func(out string, pattern func(v int64) relation.Tuple) (int64, error) {
		visited := make([]bool, nodes)
		stack := make([]int64, 0, 1024)
		var touched int64
		for v0 := 0; v0 < nodes; v0++ {
			if visited[v0] {
				continue
			}
			stack = append(stack, int64(v0))
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[v] {
					continue
				}
				visited[v] = true
				touched++
				err := r.QueryFunc(pattern(v), []string{out}, func(t relation.Tuple) bool {
					if next := t.MustGet(out).Int(); !visited[next] {
						stack = append(stack, next)
					}
					return true
				})
				if err != nil {
					return touched, err
				}
				if expired() {
					return touched, autotuner.ErrTimeout
				}
			}
		}
		return touched, nil
	}

	if _, err := dfs("dst", func(v int64) relation.Tuple {
		return relation.NewTuple(relation.BindInt("src", v))
	}); err != nil {
		return times, err
	}
	times.F = time.Since(start).Seconds()

	if _, err := dfs("src", func(v int64) relation.Tuple {
		return relation.NewTuple(relation.BindInt("dst", v))
	}); err != nil {
		return times, err
	}
	times.FB = time.Since(start).Seconds()

	for _, e := range edges {
		pat := relation.NewTuple(relation.BindInt("src", e.Src), relation.BindInt("dst", e.Dst))
		if _, err := r.Remove(pat); err != nil {
			return times, err
		}
		if expired() {
			return times, autotuner.ErrTimeout
		}
	}
	times.FBD = time.Since(start).Seconds()
	return times, nil
}

// Fig11Config scales the Figure 11 sweep. The zero value is unusable; use
// DefaultFig11Config for the paper-shaped defaults.
type Fig11Config struct {
	GridN          int   // road network is GridN×GridN
	Seed           int64 //
	MaxEdges       int   // decomposition size bound (paper: 4)
	Palette        []dstruct.Kind
	MaxAssignments int
	Timeout        time.Duration
}

// DefaultFig11Config mirrors the paper's experiment at laptop-interpreter
// scale: all decompositions up to size 4, with a per-candidate deadline
// playing the role of the paper's 8-second cutoff.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{
		GridN:          32,
		Seed:           11,
		MaxEdges:       4,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 4,
		Timeout:        2 * time.Second,
	}
}

// Fig11Row is one decomposition shape's outcome, ranked by forward time.
type Fig11Row struct {
	Decomp *decomp.Decomp // best data-structure assignment for the shape
	Times  GraphTimes
	Failed bool // no assignment finished the forward benchmark
}

// Fig11 reproduces Figure 11: elapsed times of the forward (F),
// forward+backward (F+B), and forward+backward+delete (F+B+D) graph
// benchmarks for every adequate decomposition shape up to the size bound,
// ranked by F time, with shapes that never finished reported last.
func Fig11(cfg Fig11Config) ([]Fig11Row, error) {
	spec := GraphSpec()
	edges := workload.RoadNetwork(cfg.GridN, cfg.Seed)
	nodes := workload.NodeCount(cfg.GridN)

	shapes := autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: cfg.MaxEdges, KeyArity: 1})
	var rows []Fig11Row
	for _, shape := range shapes {
		best := Fig11Row{Decomp: shape, Failed: true, Times: GraphTimes{F: math.Inf(1), FB: -1, FBD: -1}}
		for _, cand := range autotuner.Assignments(spec, shape, cfg.Palette, cfg.MaxAssignments) {
			times, err := runGraphCandidate(spec, cand, edges, nodes, cfg.Timeout)
			if err != nil && times.F < 0 {
				continue // did not even finish F
			}
			if times.F >= 0 && times.F < best.Times.F {
				best = Fig11Row{Decomp: cand, Times: times, Failed: false}
			}
		}
		rows = append(rows, best)
	}
	sortFig11(rows)
	return rows, nil
}

func runGraphCandidate(spec *core.Spec, d *decomp.Decomp, edges []workload.GraphEdge, nodes int, timeout time.Duration) (times GraphTimes, err error) {
	// Candidates run back to back; collect the previous candidate's garbage
	// outside the timed region so heap pressure does not leak into the
	// next measurement.
	runtime.GC()
	defer func() {
		if r := recover(); r != nil {
			times, err = GraphTimes{F: -1, FB: -1, FBD: -1}, autotuner.ErrTimeout
		}
	}()
	r, err := core.New(spec, d)
	if err != nil {
		return GraphTimes{F: -1, FB: -1, FBD: -1}, err
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return RunGraphBench(r, edges, nodes, deadline)
}

func sortFig11(rows []Fig11Row) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && fig11Less(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func fig11Less(a, b Fig11Row) bool {
	if a.Failed != b.Failed {
		return !a.Failed
	}
	if a.Failed {
		return a.Decomp.CanonicalShape() < b.Decomp.CanonicalShape()
	}
	return a.Times.F < b.Times.F
}

// Fig12 returns the paper's three representative graph decompositions with
// their let-notation and Graphviz renderings.
func Fig12() map[string]*decomp.Decomp {
	return map[string]*decomp.Decomp{
		"decomposition 1": paperex.GraphDecomp1(),
		"decomposition 5": paperex.GraphDecomp5(),
		"decomposition 9": paperex.GraphDecomp9(),
	}
}
