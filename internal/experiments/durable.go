package experiments

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/durable"
	"repro/internal/fd"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// The durable experiment measures what the WAL costs and what recovery
// buys: append throughput under each fsync policy, and time to reopen a
// directory as a function of how much log there is to replay — with and
// without a checkpoint bounding the tail.

// DurableConfig sizes the durable experiment.
type DurableConfig struct {
	Ops        int   // appends per fsync policy
	RecoverOps []int // log lengths for the recovery sweep
}

// DefaultDurableConfig keeps the sweep quick enough for a laptop run.
func DefaultDurableConfig() DurableConfig {
	return DurableConfig{Ops: 2000, RecoverOps: []int{1000, 5000, 20000}}
}

// DurableAppendRow is one fsync policy's append throughput.
type DurableAppendRow struct {
	Policy    string
	Ops       int
	Seconds   float64
	OpsPerSec float64
	Fsyncs    uint64
	WalBytes  uint64
}

// DurableRecoveryRow is one recovery measurement.
type DurableRecoveryRow struct {
	Ops          int // mutations in the log's lifetime
	Checkpointed bool
	Seconds      float64
	OpsPerSec    float64 // replayed mutations per second of recovery
	Replayed     uint64  // commits actually replayed from the tail
	Tuples       int     // tuples in the recovered relation
}

// DurableResult is the full durable experiment.
type DurableResult struct {
	Appends    []DurableAppendRow
	Recoveries []DurableRecoveryRow
}

func durableFlowSpec() *core.Spec {
	return &core.Spec{
		Name: "flows",
		Columns: []core.ColDef{
			{Name: "local", Type: core.IntCol},
			{Name: "foreign", Type: core.IntCol},
			{Name: "bytes", Type: core.IntCol},
		},
		FDs: fd.NewSet(fd.FD{
			From: relation.NewCols("local", "foreign"),
			To:   relation.NewCols("bytes"),
		}),
	}
}

func durableFlowDecomp() *decomp.Decomp {
	return decomp.MustNew([]decomp.Binding{
		decomp.Let("w", []string{"local", "foreign"}, []string{"bytes"},
			decomp.U("bytes")),
		decomp.Let("y", []string{"local"}, []string{"foreign", "bytes"},
			decomp.M(dstruct.HTableKind, "w", "foreign")),
		decomp.Let("x", nil, []string{"local", "foreign", "bytes"},
			decomp.M(dstruct.HTableKind, "y", "local")),
	}, "x")
}

func durableTuple(i int) relation.Tuple {
	return relation.NewTuple(
		relation.BindInt("local", int64(i%1024)),
		relation.BindInt("foreign", int64(i)),
		relation.BindInt("bytes", int64(i)*100),
	)
}

func openDurableDir(met *obs.Metrics, policy wal.SyncPolicy) (*core.DurableRelation, string, error) {
	dir, err := os.MkdirTemp("", "durable-exp-*")
	if err != nil {
		return nil, "", err
	}
	d, err := durable.Open(dir, durableFlowSpec(), durableFlowDecomp(), durable.Options{
		Create:  true,
		Policy:  policy,
		Metrics: met,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", err
	}
	return d, dir, nil
}

// RunDurable runs the append-throughput and recovery-time sweeps.
func RunDurable(cfg DurableConfig) (*DurableResult, error) {
	res := &DurableResult{}

	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		met := &obs.Metrics{}
		d, dir, err := openDurableDir(met, policy)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < cfg.Ops; i++ {
			if err := d.Insert(durableTuple(i)); err != nil {
				d.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("append sweep %v op %d: %w", policy, i, err)
			}
		}
		secs := time.Since(start).Seconds()
		if err := d.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)
		snap := met.Snapshot()
		res.Appends = append(res.Appends, DurableAppendRow{
			Policy:    policy.String(),
			Ops:       cfg.Ops,
			Seconds:   secs,
			OpsPerSec: float64(cfg.Ops) / secs,
			Fsyncs:    snap.WalFsyncs,
			WalBytes:  snap.WalBytes,
		})
	}

	for _, ops := range cfg.RecoverOps {
		for _, ckpt := range []bool{false, true} {
			row, err := measureRecovery(ops, ckpt)
			if err != nil {
				return nil, err
			}
			res.Recoveries = append(res.Recoveries, row)
		}
	}
	return res, nil
}

// measureRecovery writes an ops-long history (checkpointing at the
// half-way mark when ckpt is set), abandons the directory, and times a
// fresh durable.Open over it.
func measureRecovery(ops int, ckpt bool) (DurableRecoveryRow, error) {
	met := &obs.Metrics{}
	d, dir, err := openDurableDir(met, wal.SyncOff)
	if err != nil {
		return DurableRecoveryRow{}, err
	}
	defer os.RemoveAll(dir)
	for i := 0; i < ops; i++ {
		if err := d.Insert(durableTuple(i)); err != nil {
			d.Close()
			return DurableRecoveryRow{}, fmt.Errorf("recovery prep op %d: %w", i, err)
		}
		if ckpt && i == ops/2 {
			if err := d.Checkpoint(); err != nil {
				d.Close()
				return DurableRecoveryRow{}, err
			}
		}
	}
	if err := d.Close(); err != nil {
		return DurableRecoveryRow{}, err
	}

	rmet := &obs.Metrics{}
	start := time.Now()
	d2, err := durable.Open(dir, durableFlowSpec(), durableFlowDecomp(), durable.Options{
		Policy:  wal.SyncOff,
		Metrics: rmet,
	})
	if err != nil {
		return DurableRecoveryRow{}, fmt.Errorf("recovery open (%d ops, ckpt=%v): %w", ops, ckpt, err)
	}
	secs := time.Since(start).Seconds()
	tuples := d2.Len()
	if err := d2.Close(); err != nil {
		return DurableRecoveryRow{}, err
	}
	snap := rmet.Snapshot()
	return DurableRecoveryRow{
		Ops:          ops,
		Checkpointed: ckpt,
		Seconds:      secs,
		OpsPerSec:    float64(snap.RecoveryReplays) / secs,
		Replayed:     snap.RecoveryReplays,
		Tuples:       tuples,
	}, nil
}
