package experiments

import (
	"bufio"
	"bytes"
	"embed"
	"strings"

	"repro/internal/systems/ipcap"
	"repro/internal/systems/thttpdcache"
	"repro/internal/systems/ztopo"
)

// Table1Row is the lines-of-code comparison for one system, mirroring
// Table 1 of the paper: the hand-coded module versus the synthesized
// module plus its decomposition/specification file. All counts are
// non-comment, non-blank lines of the Go sources in this repository
// (embedded at build time, so the numbers are reproducible anywhere).
type Table1Row struct {
	System        string
	Original      int // hand-coded module (handcoded.go)
	SynthModule   int // synthesized module (synth.go)
	Decomposition int // relational spec + decomposition (decomps.go)
}

// Table1 counts the three systems' modules.
func Table1() ([]Table1Row, error) {
	systems := []struct {
		name string
		fs   embed.FS
	}{
		{"thttpd", thttpdcache.ModuleSources},
		{"ipcap", ipcap.ModuleSources},
		{"ztopo", ztopo.ModuleSources},
	}
	var rows []Table1Row
	for _, s := range systems {
		row := Table1Row{System: s.name}
		for file, dst := range map[string]*int{
			"handcoded.go": &row.Original,
			"synth.go":     &row.SynthModule,
			"decomps.go":   &row.Decomposition,
		} {
			b, err := s.fs.ReadFile(file)
			if err != nil {
				return nil, err
			}
			*dst = CountNonCommentLines(b)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CountNonCommentLines counts the lines of Go source that are neither
// blank nor comment-only — the paper's "non-comment lines of code". Block
// comments are tracked across lines; trailing comments do not disqualify a
// code line. (String literals containing comment markers would fool this
// counter; the counted files do not contain any.)
func CountNonCommentLines(src []byte) int {
	n := 0
	inBlock := false
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		for {
			start := strings.Index(line, "/*")
			if start < 0 {
				break
			}
			end := strings.Index(line[start+2:], "*/")
			if end < 0 {
				line = strings.TrimSpace(line[:start])
				inBlock = true
				break
			}
			line = strings.TrimSpace(line[:start] + line[start+2+end+2:])
		}
		if i := strings.Index(line, "//"); i == 0 {
			continue
		}
		if line == "" {
			continue
		}
		n++
	}
	return n
}
