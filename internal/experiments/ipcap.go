package experiments

import (
	"time"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/systems/ipcap"
	"repro/internal/workload"
)

// Fig13Config scales the Figure 13 sweep (IpCap flow accounting across
// decompositions).
type Fig13Config struct {
	Packets        int
	LocalHosts     int
	ForeignHosts   int
	Seed           int64
	FlushEvery     int
	MaxEdges       int
	Palette        []dstruct.Kind
	MaxAssignments int
	Timeout        time.Duration
}

// DefaultFig13Config mirrors the paper's run — 3×10⁵ random packets — at a
// laptop-scale default; cmd/paperbench exposes flags to go to full scale.
//
// The default size bound is 3 rather than the paper's 4: the paper's flow
// relation is effectively three columns (local, foreign, one stats payload
// → 84 decompositions at size ≤ 4), while this reproduction tracks packet
// and byte counters as separate columns, which inflates the size-4 shape
// space to 556. Size ≤ 3 (46 shapes) keeps the sweep comparable in scale;
// pass -maxedges 4 for the full space.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		Packets:        50_000,
		LocalHosts:     64,
		ForeignHosts:   8192,
		Seed:           13,
		FlushEvery:     20_000,
		MaxEdges:       3,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.AVLKind},
		MaxAssignments: 4,
		Timeout:        time.Second,
	}
}

// Fig13Row is one decomposition shape's outcome on the packet workload.
type Fig13Row struct {
	Decomp  *decomp.Decomp
	Seconds float64
	Failed  bool
}

// Fig13 reproduces Figure 13: elapsed time for the IpCap daemon to log the
// packet trace, for every adequate flow-table decomposition up to the size
// bound, ranked by time, with decompositions that exceeded the deadline
// reported last (the paper's "did not complete within 30 seconds").
func Fig13(cfg Fig13Config) ([]Fig13Row, error) {
	trace := workload.PacketTrace(cfg.Packets, cfg.LocalHosts, cfg.ForeignHosts, cfg.Seed)
	spec := ipcap.FlowSpec()
	results, err := autotuner.Tune(spec, autotuner.Options{
		MaxEdges:       cfg.MaxEdges,
		KeyArity:       1,
		Palette:        cfg.Palette,
		MaxAssignments: cfg.MaxAssignments,
		Timeout:        cfg.Timeout,
		// The figure ranks candidates by wall-clock seconds; concurrent
		// candidates would time each other's contention, so sweep serially.
		Workers: 1,
	}, func(r *core.Relation, deadline time.Time) (float64, error) {
		return RunIpcapBench(r, trace, cfg.FlushEvery, deadline)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig13Row, len(results))
	for i, res := range results {
		rows[i] = Fig13Row{Decomp: res.Decomp, Seconds: res.Cost, Failed: res.Failed}
	}
	return rows, nil
}

// RunIpcapBench feeds the trace through an accounting daemon whose flow
// table is backed by the given relation and returns the elapsed seconds.
func RunIpcapBench(r *core.Relation, trace []workload.Packet, flushEvery int, deadline time.Time) (float64, error) {
	table := ipcap.WrapRelation(r)
	daemon := ipcap.NewDaemon(table, nil, flushEvery)
	start := time.Now()
	for i, p := range trace {
		if err := daemon.HandlePacket(p); err != nil {
			return 0, err
		}
		if i%1024 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return 0, autotuner.ErrTimeout
		}
	}
	if err := daemon.Flush(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}
