package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/systems/ipcap"
	"repro/internal/systems/thttpdcache"
	"repro/internal/systems/ztopo"
	"repro/internal/workload"
)

// SchedulerSpec is the scheduler relation of §1–§2, typed.
func SchedulerSpec() *core.Spec {
	return &core.Spec{
		Name: "processes",
		Columns: []core.ColDef{
			{Name: "ns", Type: core.IntCol},
			{Name: "pid", Type: core.IntCol},
			{Name: "state", Type: core.IntCol},
			{Name: "cpu", Type: core.IntCol},
		},
		FDs: paperex.SchedulerFDs(),
	}
}

// RunSchedulerBench replays a scheduler operation trace against a relation
// over SchedulerSpec (the scheduler micro-benchmark of §6.1) and returns
// the elapsed seconds plus an operation checksum that every decomposition
// must agree on.
func RunSchedulerBench(r *core.Relation, ops []workload.SchedulerOp) (float64, int64, error) {
	var checksum int64
	start := time.Now()
	for _, op := range ops {
		key := relation.NewTuple(relation.BindInt("ns", op.NS), relation.BindInt("pid", op.PID))
		switch op.Kind {
		case workload.OpSpawn:
			// Spawn replaces any existing process with the same ID.
			if _, err := r.Remove(key); err != nil {
				return 0, 0, err
			}
			if err := r.Insert(paperex.SchedulerTuple(op.NS, op.PID, op.State, op.CPU)); err != nil {
				return 0, 0, err
			}
		case workload.OpExit:
			n, err := r.Remove(key)
			if err != nil {
				return 0, 0, err
			}
			checksum += int64(n)
		case workload.OpSetState:
			n, err := r.Update(key, relation.NewTuple(relation.BindInt("state", op.State)))
			if err != nil {
				return 0, 0, err
			}
			checksum += int64(n)
		case workload.OpCharge:
			n, err := r.Update(key, relation.NewTuple(relation.BindInt("cpu", op.CPU)))
			if err != nil {
				return 0, 0, err
			}
			checksum += int64(n)
		case workload.OpFindByPID:
			err := r.QueryFunc(key, []string{"state", "cpu"}, func(t relation.Tuple) bool {
				checksum += t.MustGet("cpu").Int()
				return true
			})
			if err != nil {
				return 0, 0, err
			}
		case workload.OpListState:
			err := r.QueryFunc(relation.NewTuple(relation.BindInt("state", op.State)),
				[]string{"ns", "pid"}, func(t relation.Tuple) bool {
					checksum += t.MustGet("pid").Int()
					return true
				})
			if err != nil {
				return 0, 0, err
			}
		case workload.OpListNS:
			err := r.QueryFunc(relation.NewTuple(relation.BindInt("ns", op.NS)),
				[]string{"pid"}, func(t relation.Tuple) bool {
					checksum++
					return true
				})
			if err != nil {
				return 0, 0, err
			}
		}
	}
	return time.Since(start).Seconds(), checksum, nil
}

// ParityResult compares the three variants of one case-study system on the
// same workload (§6.2: "For each system, the relational and non-relational
// versions had equivalent performance"): hand-coded, the interpreted engine
// (core.Relation), and relc-generated code — the last being the paper's
// deployment mode and the fair performance comparison.
type ParityResult struct {
	System    string
	HandSecs  float64
	SynthSecs float64 // interpreted engine
	GenSecs   float64 // relc-generated code
	Agree     bool    // behaviour identical across all variants
}

// RunParity measures all three systems.
func RunParity(scale int) ([]ParityResult, error) {
	var out []ParityResult

	// thttpd: Zipf request stream through the server cache logic.
	reqs := workload.Zipf(4000*scale, 500, 1.1, 21)
	runThttpd := func(c thttpdcache.Cache) (float64, int, error) {
		store := thttpdcache.NewFileStore()
		srv := thttpdcache.NewServer(c, store, 64, 300)
		start := time.Now()
		for _, r := range reqs {
			if _, err := srv.GetFile(fmt.Sprintf("/files/%d.html", r)); err != nil {
				return 0, 0, err
			}
		}
		return time.Since(start).Seconds(), srv.Hits, nil
	}
	handSecs, handHits, err := runThttpd(thttpdcache.NewHandCache())
	if err != nil {
		return nil, err
	}
	synthCache, err := thttpdcache.NewSynthCache(thttpdcache.DefaultMapDecomp())
	if err != nil {
		return nil, err
	}
	synthSecs, synthHits, err := runThttpd(synthCache)
	if err != nil {
		return nil, err
	}
	genSecs, genHits, err := runThttpd(thttpdcache.NewGenCache())
	if err != nil {
		return nil, err
	}
	out = append(out, ParityResult{"thttpd", handSecs, synthSecs, genSecs,
		handHits == synthHits && handHits == genHits})

	// ipcap: packet trace through the daemon.
	trace := workload.PacketTrace(20000*scale, 64, 1024, 23)
	runIpcap := func(t ipcap.FlowTable) (float64, int, error) {
		d := ipcap.NewDaemon(t, nil, 10000)
		start := time.Now()
		for _, p := range trace {
			if err := d.HandlePacket(p); err != nil {
				return 0, 0, err
			}
		}
		if err := d.Flush(); err != nil {
			return 0, 0, err
		}
		processed, _ := d.Stats()
		return time.Since(start).Seconds(), processed, nil
	}
	iHandSecs, iHandN, err := runIpcap(ipcap.NewHandFlowTable())
	if err != nil {
		return nil, err
	}
	synthFlow, err := ipcap.NewSynthFlowTable(ipcap.DefaultFlowDecomp())
	if err != nil {
		return nil, err
	}
	iSynthSecs, iSynthN, err := runIpcap(synthFlow)
	if err != nil {
		return nil, err
	}
	iGenSecs, iGenN, err := runIpcap(ipcap.NewGenFlowTable())
	if err != nil {
		return nil, err
	}
	out = append(out, ParityResult{"ipcap", iHandSecs, iSynthSecs, iGenSecs,
		iHandN == iSynthN && iHandN == iGenN})

	// ztopo: Zipf tile stream through the viewer.
	accesses := workload.Zipf(3000*scale, 400, 1.1, 25)
	runZtopo := func(idx ztopo.TileIndex) (float64, int, error) {
		store := ztopo.NewTileStore(1 << 10)
		v := ztopo.NewViewer(idx, store, 64<<10, 256<<10)
		start := time.Now()
		for _, id := range accesses {
			if _, err := v.Tile(id); err != nil {
				return 0, 0, err
			}
		}
		return time.Since(start).Seconds(), v.MemHits, nil
	}
	zHandSecs, zHandHits, err := runZtopo(ztopo.NewHandTileIndex())
	if err != nil {
		return nil, err
	}
	synthIdx, err := ztopo.NewSynthTileIndex(ztopo.DefaultTileDecomp())
	if err != nil {
		return nil, err
	}
	zSynthSecs, zSynthHits, err := runZtopo(synthIdx)
	if err != nil {
		return nil, err
	}
	zGenSecs, zGenHits, err := runZtopo(ztopo.NewGenTileIndex())
	if err != nil {
		return nil, err
	}
	out = append(out, ParityResult{"ztopo", zHandSecs, zSynthSecs, zGenSecs,
		zHandHits == zSynthHits && zHandHits == zGenHits})

	return out, nil
}
