package autotuner_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/paperex"
	"repro/internal/relation"
)

func graphSpec() *core.Spec {
	return &core.Spec{
		Name: "edges",
		Columns: []core.ColDef{
			{Name: "src", Type: core.IntCol},
			{Name: "dst", Type: core.IntCol},
			{Name: "weight", Type: core.IntCol},
		},
		FDs: paperex.GraphFDs(),
	}
}

func TestEnumerateCountsSingleKey(t *testing.T) {
	// The paper's autotuner generates 84 decompositions of the graph edge
	// relation with at most 4 map edges (Figure 11). Our enumerator, with
	// the same single-column-key discipline, generates 82 — the small gap
	// comes from different conventions at the margins of the shape space,
	// documented in EXPERIMENTS.md.
	spec := graphSpec()
	counts := map[int]int{}
	for _, n := range []int{1, 2, 3, 4} {
		counts[n] = len(autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: n, KeyArity: 1}))
	}
	// Pinned exactly so enumerator changes cannot silently move the
	// headline reproduction number (update deliberately if the enumeration
	// conventions change).
	if counts[4] != 82 {
		t.Errorf("size ≤ 4 shape count = %d, want 82 (paper: 84)", counts[4])
	}
	for n := 2; n <= 4; n++ {
		if counts[n] <= counts[n-1] {
			t.Errorf("shape count not growing: %v", counts)
		}
	}
}

func TestEnumerateAllAdequate(t *testing.T) {
	spec := graphSpec()
	shapes := autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: 3, KeyArity: 1})
	seen := map[string]bool{}
	for _, d := range shapes {
		if err := d.CheckAdequate(spec.Cols(), spec.FDs); err != nil {
			t.Errorf("enumerated inadequate decomposition:\n%s\n%v", d, err)
		}
		key := d.CanonicalShape()
		if seen[key] {
			t.Errorf("duplicate shape: %s", key)
		}
		seen[key] = true
	}
}

func TestEnumerateIncludesPaperShapes(t *testing.T) {
	// Decompositions 1, 5 and 9 of Figure 12 must appear among the
	// enumerated shapes (up to data-structure choice).
	spec := graphSpec()
	shapes := autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: 4, KeyArity: 1})
	keys := map[string]bool{}
	for _, d := range shapes {
		keys[d.CanonicalShape()] = true
	}
	for name, want := range map[string]*decomp.Decomp{
		"decomp1": paperex.GraphDecomp1(),
		"decomp5": paperex.GraphDecomp5(),
		"decomp9": paperex.GraphDecomp9(),
	} {
		if !keys[want.CanonicalShape()] {
			t.Errorf("%s not found among enumerated shapes", name)
		}
	}
}

func TestEnumerateSingleColumnSetRelation(t *testing.T) {
	// A one-column relation (the graph benchmark's nodes relation) can only
	// be represented as key → empty unit; the enumerator must produce it.
	spec := &core.Spec{
		Name:    "nodes",
		Columns: []core.ColDef{{Name: "id", Type: core.IntCol}},
	}
	shapes := autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: 2, KeyArity: 1})
	if len(shapes) == 0 {
		t.Fatalf("no shapes for single-column relation")
	}
	for _, d := range shapes {
		if err := d.CheckAdequate(spec.Cols(), spec.FDs); err != nil {
			t.Errorf("inadequate: %v", err)
		}
	}
}

func TestAssignments(t *testing.T) {
	spec := graphSpec()
	d := paperex.GraphDecomp1()
	palette := []dstruct.Kind{dstruct.HTableKind, dstruct.AVLKind}
	as := autotuner.Assignments(spec, d, palette, 0)
	// 2 edges × 2 kinds = 4 combos, plus the original assignment first.
	if len(as) != 5 {
		t.Fatalf("got %d assignments, want 5", len(as))
	}
	if as[0] != d {
		t.Errorf("original assignment not first")
	}
	capped := autotuner.Assignments(spec, d, palette, 3)
	if len(capped) != 3 {
		t.Errorf("cap not applied: %d", len(capped))
	}
	// Vector over the string column must be filtered out.
	specStr := graphSpec()
	specStr.Columns[0].Type = core.StringCol // src becomes a string
	vecOnly := autotuner.Assignments(specStr, d, []dstruct.Kind{dstruct.VectorKind}, 0)
	if len(vecOnly) != 1 { // only the original survives
		t.Errorf("vector-over-string assignments not filtered: %d", len(vecOnly))
	}
}

func TestTuneRanksByCost(t *testing.T) {
	// A benchmark that rewards decompositions answering src→dst queries
	// cheaply: insert a small graph, run many successor queries, cost =
	// number of emitted visit steps, approximated here by wall time being
	// replaced with a deterministic op counter via QueryFunc calls.
	spec := graphSpec()
	bench := func(r *core.Relation, deadline time.Time) (float64, error) {
		ops := 0
		for s := int64(0); s < 8; s++ {
			for d := int64(0); d < 8; d++ {
				if err := r.Insert(paperex.EdgeTuple(s, d, s+d)); err != nil {
					return 0, err
				}
			}
		}
		start := time.Now()
		for rep := 0; rep < 30; rep++ {
			for s := int64(0); s < 8; s++ {
				err := r.QueryFunc(relation.NewTuple(relation.BindInt("src", s)), []string{"dst"}, func(relation.Tuple) bool {
					ops++
					return true
				})
				if err != nil {
					return 0, err
				}
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return 0, autotuner.ErrTimeout
			}
		}
		return time.Since(start).Seconds(), nil
	}
	results, err := autotuner.Tune(spec, autotuner.Options{
		MaxEdges:       2,
		KeyArity:       1,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 8,
		Timeout:        2 * time.Second,
	}, bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	// Sorted by cost, failures last.
	lastCost := -1.0
	seenFailed := false
	okCount := 0
	for _, res := range results {
		if res.Failed {
			seenFailed = true
			continue
		}
		okCount++
		if seenFailed {
			t.Errorf("successful result after failed ones")
		}
		if res.Cost < lastCost {
			t.Errorf("results not sorted by cost")
		}
		lastCost = res.Cost
		if res.Decomp == nil || res.Tried == 0 {
			t.Errorf("result missing decomposition or tried-count")
		}
	}
	if okCount == 0 {
		t.Fatalf("every shape failed: %+v", results[0].Err)
	}
}

func TestTuneLintPruning(t *testing.T) {
	// With Lint on, shapes the decomposition linter flags (at size 3 the
	// graph relation enumerates shadow joins — both branches keyed the
	// same way) are never benchmarked, appear last, and carry the
	// findings that condemned them; every other shape still runs.
	spec := graphSpec()
	benched := 0
	bench := func(r *core.Relation, _ time.Time) (float64, error) {
		benched++
		return float64(benched), nil
	}
	results, err := autotuner.Tune(spec, autotuner.Options{
		MaxEdges:       3,
		KeyArity:       1,
		Palette:        []dstruct.Kind{dstruct.HTableKind},
		MaxAssignments: 1,
		Lint:           true,
	}, bench)
	if err != nil {
		t.Fatal(err)
	}
	pruned := 0
	seenPruned := false
	for _, res := range results {
		if res.Pruned {
			pruned++
			seenPruned = true
			if res.Tried != 0 {
				t.Errorf("pruned shape was benchmarked %d times", res.Tried)
			}
			if len(res.Diags) == 0 {
				t.Errorf("pruned shape carries no explaining diagnostics")
			}
			continue
		}
		if seenPruned {
			t.Errorf("non-pruned result sorted after pruned ones")
		}
		if len(res.Diags) != 0 {
			t.Errorf("un-pruned shape carries diagnostics: %v", res.Diags)
		}
	}
	if pruned == 0 {
		t.Fatal("no shapes pruned; expected shadow joins at size 3")
	}
	if pruned == len(results) {
		t.Fatal("every shape pruned")
	}

	// Suppressing the only firing code must restore the full sweep.
	benched = 0
	all, err := autotuner.Tune(spec, autotuner.Options{
		MaxEdges:       3,
		KeyArity:       1,
		Palette:        []dstruct.Kind{dstruct.HTableKind},
		MaxAssignments: 1,
		Lint:           true,
		LintSuppress:   []string{"relvet006"},
	}, bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range all {
		if res.Pruned {
			t.Errorf("shape pruned despite suppression: %v", res.Diags)
		}
	}
}

func TestTuneSurvivesPanickingCandidates(t *testing.T) {
	spec := graphSpec()
	calls := 0
	bench := func(r *core.Relation, _ time.Time) (float64, error) {
		calls++
		if calls%2 == 0 {
			panic("deliberate test panic")
		}
		return float64(calls), nil
	}
	results, err := autotuner.Tune(spec, autotuner.Options{
		MaxEdges: 2, KeyArity: 1,
		Palette:        []dstruct.Kind{dstruct.HTableKind},
		MaxAssignments: 2,
	}, bench)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results despite recovering from panics")
	}
}

func TestTuneRejectsBadSpec(t *testing.T) {
	if _, err := autotuner.Tune(&core.Spec{}, autotuner.Options{MaxEdges: 2}, nil); err == nil {
		t.Errorf("tune accepted invalid spec")
	}
}

func TestShapeStringsAreReadable(t *testing.T) {
	spec := graphSpec()
	shapes := autotuner.EnumerateShapes(spec, autotuner.EnumOptions{MaxEdges: 2, KeyArity: 1})
	for _, d := range shapes {
		if !strings.Contains(d.String(), "let") {
			t.Errorf("unprintable decomposition: %q", d.String())
		}
	}
}

// TestTuneParallelDeterministic: the worker-pool sweep must produce exactly
// the sequential sweep's results — same winners, same costs, same order —
// for any worker count. The benchmark's cost is a pure function of the
// candidate (a hash of its rendering), so completion order is the only
// thing that could differ between runs, and it must not matter.
func TestTuneParallelDeterministic(t *testing.T) {
	spec := graphSpec()
	bench := func(r *core.Relation, _ time.Time) (float64, error) {
		h := uint64(14695981039346656037)
		for _, b := range []byte(r.Decomp().String()) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		if h%13 == 0 {
			return 0, autotuner.ErrTimeout // some candidates "fail", deterministically
		}
		return float64(h % 1000), nil
	}
	opts := autotuner.Options{
		MaxEdges: 2, KeyArity: 1,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 8,
	}
	opts.Workers = 1
	seq, err := autotuner.Tune(spec, opts, bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		opts.Workers = workers
		par, err := autotuner.Tune(spec, opts, bench)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results vs sequential %d", workers, len(par), len(seq))
		}
		for i := range seq {
			s, p := seq[i], par[i]
			if s.Shape != p.Shape || s.Cost != p.Cost || s.Tried != p.Tried || s.Failed != p.Failed {
				t.Fatalf("workers=%d result %d differs:\nseq %+v\npar %+v", workers, i, s, p)
			}
			if s.Decomp.String() != p.Decomp.String() {
				t.Fatalf("workers=%d result %d chose %s, sequential chose %s",
					workers, i, p.Decomp, s.Decomp)
			}
		}
	}
}
