// Package autotuner implements §5 of the paper: given a relational
// specification and a cost metric, it exhaustively constructs all adequate
// decompositions of the relation up to a bound on the number of map edges,
// benchmarks each (with data-structure assignments swept over a palette),
// and returns candidates sorted by increasing cost.
package autotuner

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/fd"
	"repro/internal/relation"
)

// shape is an intermediate decomposition skeleton used during enumeration:
// the same structure as decomp.Primitive but with identity-bearing
// variables so that sharing can be introduced by merging.
type shape struct {
	unit  bool
	cols  relation.Cols // unit columns, or map key columns
	child *shapeVar     // map target (nil for unit)
	left  *shape        // join sides (nil otherwise)
	right *shape
}

type shapeVar struct {
	bound relation.Cols
	def   *shape
}

func (s *shape) isJoin() bool { return s.left != nil }

// structKey returns a canonical string for the *structure* of a subtree —
// covers, keys and nesting, but not bounds — used to find sharing
// candidates: two map targets with identical structure can be merged into
// one shared variable.
func (s *shape) structKey() string {
	switch {
	case s.unit:
		return "u" + s.cols.Key()
	case s.isJoin():
		l, r := s.left.structKey(), s.right.structKey()
		if r < l {
			l, r = r, l
		}
		return "j(" + l + "," + r + ")"
	default:
		return "m[" + s.cols.Key() + "](" + s.child.def.structKey() + ")"
	}
}

// clone deep-copies a shape with fresh variable identities.
func (s *shape) clone() *shape {
	switch {
	case s == nil:
		return nil
	case s.unit:
		return &shape{unit: true, cols: s.cols}
	case s.isJoin():
		return &shape{cols: s.cols, left: s.left.clone(), right: s.right.clone()}
	default:
		return &shape{cols: s.cols, child: &shapeVar{bound: s.child.bound, def: s.child.def.clone()}}
	}
}

type cand struct {
	def   *shape
	edges int
}

// enumerator enumerates definition shapes for (bound, cover) pairs.
type enumerator struct {
	fds      fd.Set
	keyArity int // 0 = unlimited
	memo     map[string][]cand
}

// defs returns every definition shape covering exactly cover under bound
// columns bound, using at most budget map edges. Results are deep-copied on
// return so callers own variable identities.
func (e *enumerator) defs(bound, cover relation.Cols, budget int) []cand {
	key := fmt.Sprintf("%s|%s|%d", bound.Key(), cover.Key(), budget)
	if cached, ok := e.memo[key]; ok {
		return copyCands(cached)
	}
	var out []cand

	// Unit: needs a nonempty bound (rule AUNIT) and the FDs must determine
	// the covered columns from the bound ones.
	if !bound.IsEmpty() && e.fds.Implies(bound, cover) {
		out = append(out, cand{def: &shape{unit: true, cols: cover}})
	}

	// Map: pick nonempty key columns K ⊆ cover; the child covers the rest
	// under bound ∪ K.
	out = append(out, e.mapDefs(bound, cover, budget)...)

	// Join: split cover into two (possibly overlapping) sides. The left
	// side is always a map (this normal form terminates and loses nothing:
	// join is commutative and the canonical dedup folds mirrors); the right
	// side may be a unit, map, or another join. The left side consumes at
	// least one edge, so the right side's budget strictly decreases and the
	// recursion terminates.
	if budget >= 1 && cover.Len() >= 1 {
		for _, split := range coverSplits(cover) {
			c1, c2 := split[0], split[1]
			// Rule AJOIN's side condition, checked here to prune early;
			// the authoritative adequacy check runs again on the result.
			if !e.fds.Implies(bound.Union(c1.Intersect(c2)), c1.SymDiff(c2)) {
				continue
			}
			for _, l := range e.mapDefs(bound, c1, budget) {
				for _, r := range e.defs(bound, c2, budget-l.edges) {
					out = append(out, cand{
						def:   &shape{left: l.def, right: r.def},
						edges: l.edges + r.edges,
					})
				}
			}
		}
	}

	e.memo[key] = out
	return copyCands(out)
}

// mapDefs enumerates only map-rooted definition shapes for (bound, cover)
// using at most budget edges.
func (e *enumerator) mapDefs(bound, cover relation.Cols, budget int) []cand {
	if budget < 1 || cover.IsEmpty() {
		return nil
	}
	key := fmt.Sprintf("M%s|%s|%d", bound.Key(), cover.Key(), budget)
	if cached, ok := e.memo[key]; ok {
		return copyCands(cached)
	}
	var out []cand
	for _, k := range nonEmptySubsets(cover) {
		if e.keyArity > 0 && k.Len() > e.keyArity {
			continue
		}
		rest := cover.Minus(k)
		childBound := bound.Union(k)
		for _, sub := range e.defs(childBound, rest, budget-1) {
			out = append(out, cand{
				def: &shape{cols: k, child: &shapeVar{
					bound: childBound, def: sub.def,
				}},
				edges: sub.edges + 1,
			})
		}
	}
	e.memo[key] = out
	return copyCands(out)
}

func copyCands(cs []cand) []cand {
	out := make([]cand, len(cs))
	for i, c := range cs {
		out[i] = cand{def: c.def.clone(), edges: c.edges}
	}
	return out
}

// nonEmptySubsets returns every nonempty subset of c.
func nonEmptySubsets(c relation.Cols) []relation.Cols {
	names := c.Names()
	var out []relation.Cols
	for mask := 1; mask < 1<<len(names); mask++ {
		var sub []string
		for i, n := range names {
			if mask&(1<<i) != 0 {
				sub = append(sub, n)
			}
		}
		out = append(out, relation.NewCols(sub...))
	}
	return out
}

// coverSplits returns the pairs (C1, C2) with C1 ∪ C2 = c and both sides
// nonempty: each column goes left, right, or both.
func coverSplits(c relation.Cols) [][2]relation.Cols {
	names := c.Names()
	var out [][2]relation.Cols
	total := 1
	for range names {
		total *= 3
	}
	for code := 0; code < total; code++ {
		var l, r []string
		x := code
		for _, n := range names {
			switch x % 3 {
			case 0:
				l = append(l, n)
			case 1:
				r = append(r, n)
			default:
				l = append(l, n)
				r = append(r, n)
			}
			x /= 3
		}
		if len(l) == 0 || len(r) == 0 {
			continue
		}
		out = append(out, [2]relation.Cols{relation.NewCols(l...), relation.NewCols(r...)})
	}
	return out
}

// EnumOptions configures shape enumeration.
type EnumOptions struct {
	// MaxEdges bounds the number of map edges (the paper's "size").
	MaxEdges int
	// KeyArity bounds the number of key columns per map edge; 0 means
	// unlimited. The paper's autotuner-generated decompositions (Figures 11
	// through 13) use single-column keys — KeyArity 1 reproduces its
	// decomposition counts (82 here vs the paper's 84 for the graph
	// relation at size ≤ 4); hand-written decompositions like Figure 2(a)
	// may still use composite keys.
	KeyArity int
	// DefaultKind is the data structure placed on every edge of the
	// returned shapes (assignments are swept separately).
	DefaultKind dstruct.Kind
}

// EnumerateShapes returns every adequate decomposition shape for the
// specification, de-duplicated up to isomorphism (including the choice of
// data structures, which are all set to opts.DefaultKind). Sharing variants
// — identical subtrees merged into one shared node, as in decomposition 5
// of Figure 12 — are included.
func EnumerateShapes(spec *core.Spec, opts EnumOptions) []*decomp.Decomp {
	if opts.DefaultKind == "" {
		opts.DefaultKind = dstruct.HTableKind
	}
	maxEdges := opts.MaxEdges
	defaultKind := opts.DefaultKind
	e := &enumerator{fds: spec.FDs, keyArity: opts.KeyArity, memo: make(map[string][]cand)}
	cols := spec.Cols()
	seen := make(map[string]bool)
	var out []*decomp.Decomp
	for _, c := range e.defs(relation.NewCols(), cols, maxEdges) {
		for _, variant := range sharingVariants(c.def) {
			d, err := buildDecomp(variant, cols, defaultKind)
			if err != nil {
				continue
			}
			if err := d.CheckAdequate(cols, spec.FDs); err != nil {
				continue
			}
			key := d.CanonicalShape()
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumEdges() != out[j].NumEdges() {
			return out[i].NumEdges() < out[j].NumEdges()
		}
		return out[i].CanonicalShape() < out[j].CanonicalShape()
	})
	return out
}

// sharingVariants returns the original shape plus variants in which groups
// of structurally identical map targets are merged into shared variables.
func sharingVariants(root *shape) []*shape {
	// Collect the variables of the tree grouped by structure.
	groups := make(map[string][]*shapeVar)
	var walk func(s *shape)
	walk = func(s *shape) {
		switch {
		case s == nil || s.unit:
		case s.isJoin():
			walk(s.left)
			walk(s.right)
		default:
			groups[s.child.def.structKey()] = append(groups[s.child.def.structKey()], s.child)
			walk(s.child.def)
		}
	}
	walk(root)

	var mergeable [][]*shapeVar
	for _, g := range groups {
		if len(g) >= 2 {
			mergeable = append(mergeable, g)
		}
	}
	sort.Slice(mergeable, func(i, j int) bool {
		return mergeable[i][0].def.structKey() < mergeable[j][0].def.structKey()
	})
	if len(mergeable) == 0 || len(mergeable) > 4 {
		return []*shape{root}
	}

	var out []*shape
	for mask := 0; mask < 1<<len(mergeable); mask++ {
		v := root.clone()
		// Recompute groups on the clone (same traversal order).
		cgroups := make(map[string][]*shapeVar)
		var cwalk func(s *shape)
		cwalk = func(s *shape) {
			switch {
			case s == nil || s.unit:
			case s.isJoin():
				cwalk(s.left)
				cwalk(s.right)
			default:
				k := s.child.def.structKey()
				cgroups[k] = append(cgroups[k], s.child)
				cwalk(s.child.def)
			}
		}
		cwalk(v)
		for gi, g := range mergeable {
			if mask&(1<<gi) == 0 {
				continue
			}
			cg := cgroups[g[0].def.structKey()]
			if len(cg) < 2 {
				continue
			}
			// Merge: all members share the first member's definition, and
			// the shared bound is the union of the members' bounds.
			bound := cg[0].bound
			for _, m := range cg[1:] {
				bound = bound.Union(m.bound)
			}
			shared := &shapeVar{bound: bound, def: cg[0].def}
			replaceVars(v, cg, shared)
		}
		out = append(out, v)
	}
	return out
}

// replaceVars rewires every map edge whose target is in olds to point at
// shared instead.
func replaceVars(s *shape, olds []*shapeVar, shared *shapeVar) {
	switch {
	case s == nil || s.unit:
	case s.isJoin():
		replaceVars(s.left, olds, shared)
		replaceVars(s.right, olds, shared)
	default:
		for _, o := range olds {
			if s.child == o {
				s.child = shared
			}
		}
		replaceVars(s.child.def, olds, shared)
	}
}

// buildDecomp linearizes a shape into a decomp.Decomp, naming variables in
// dependency order and computing each variable's cover.
func buildDecomp(root *shape, cols relation.Cols, kind dstruct.Kind) (*decomp.Decomp, error) {
	var bindings []decomp.Binding
	names := make(map[*shapeVar]string)
	var coverOf func(s *shape) relation.Cols
	var emit func(v *shapeVar) string
	var toPrim func(s *shape) decomp.Primitive

	coverOf = func(s *shape) relation.Cols {
		switch {
		case s.unit:
			return s.cols
		case s.isJoin():
			return coverOf(s.left).Union(coverOf(s.right))
		default:
			return s.cols.Union(coverOf(s.child.def))
		}
	}
	toPrim = func(s *shape) decomp.Primitive {
		switch {
		case s.unit:
			return &decomp.Unit{Cols: s.cols}
		case s.isJoin():
			return &decomp.Join{Left: toPrim(s.left), Right: toPrim(s.right)}
		default:
			return &decomp.MapEdge{Key: s.cols, DS: kind, Target: emit(s.child)}
		}
	}
	emit = func(v *shapeVar) string {
		if n, ok := names[v]; ok {
			return n
		}
		prim := toPrim(v.def) // emits dependencies first
		n := fmt.Sprintf("v%d", len(bindings))
		names[v] = n
		bindings = append(bindings, decomp.Binding{
			Var: n, Bound: v.bound, Cover: coverOf(v.def), Def: prim,
		})
		return n
	}

	rootPrim := toPrim(root)
	bindings = append(bindings, decomp.Binding{
		Var: "root", Bound: relation.NewCols(), Cover: coverOf(root), Def: rootPrim,
	})
	return decomp.New(bindings, "root")
}
