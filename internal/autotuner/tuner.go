package autotuner

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/diag"
	"repro/internal/dstruct"
	"repro/internal/lint"
)

// A Benchmark measures one candidate representation: it receives a fresh
// empty relation and a deadline, runs its workload, and returns the cost
// (any metric — the autotuner makes no assumption; elapsed seconds is
// typical). Long-running candidates should poll the deadline and return
// ErrTimeout, mirroring the paper's cut-off for hopeless decompositions
// (the 68 elided entries of Figure 11).
type Benchmark func(r *core.Relation, deadline time.Time) (float64, error)

// ErrTimeout is returned by benchmarks that exceed their deadline.
var ErrTimeout = fmt.Errorf("autotuner: benchmark exceeded its deadline")

// Options configures a tuning run.
type Options struct {
	// MaxEdges bounds the enumeration (the paper's "up to size 4").
	MaxEdges int
	// KeyArity bounds key columns per edge; see EnumOptions.KeyArity.
	KeyArity int
	// Palette is the set of data structures swept per edge. Default:
	// htable, avl, dlist.
	Palette []dstruct.Kind
	// MaxAssignments caps the number of data-structure assignments tried
	// per shape (they are generated in a deterministic order). 0 = no cap.
	MaxAssignments int
	// Timeout is the per-benchmark deadline. 0 = none.
	Timeout time.Duration
	// Workers bounds the goroutines benchmarking candidates concurrently.
	// 0 means GOMAXPROCS; 1 runs the classic sequential sweep. Results are
	// deterministic for any worker count — candidates are reduced in
	// enumeration order regardless of completion order — but a benchmark
	// whose cost metric is wall-clock time should use 1, since concurrent
	// candidates distort each other's timings.
	Workers int
	// Lint prunes shapes the decomposition linter flags (redundant map
	// edges, non-minimal keys, shadow joins — see internal/lint) before
	// any benchmark runs. Pruned shapes still appear in the results,
	// marked Pruned and carrying the lint findings that condemned them,
	// so a tuning report can explain every exclusion. Pruning only
	// shrinks benchmark time: the linted smells are storage-redundancy
	// patterns whose un-flagged sibling shape is always also enumerated.
	Lint bool
	// LintSuppress drops specific lint codes (e.g. "relvet004") from the
	// pruning set when Lint is on.
	LintSuppress []string
}

func (o *Options) palette() []dstruct.Kind {
	if len(o.Palette) > 0 {
		return o.Palette
	}
	return []dstruct.Kind{dstruct.HTableKind, dstruct.AVLKind, dstruct.DListKind}
}

// A Result is the outcome for one decomposition shape: its best
// data-structure assignment and that assignment's cost. Failed reports
// shapes where no assignment finished (the "did not complete" entries of
// Figures 11 and 13).
type Result struct {
	Decomp *decomp.Decomp // best assignment of the shape
	Shape  string         // canonical shape key
	Cost   float64
	Tried  int // assignments benchmarked
	Failed bool
	Err    error // last error when Failed

	// Pruned marks shapes Options.Lint excluded before benchmarking;
	// Diags holds the lint findings explaining why.
	Pruned bool
	Diags  []diag.Diagnostic
}

// Assignments returns the decomposition with every combination of palette
// data structures on its edges that passes core validation for the spec
// (e.g. vectors only on single integer key columns). The input
// decomposition's own assignment is always first.
func Assignments(spec *core.Spec, d *decomp.Decomp, palette []dstruct.Kind, cap int) []*decomp.Decomp {
	nEdges := d.NumEdges()
	out := []*decomp.Decomp{d}
	kinds := make([]dstruct.Kind, nEdges)
	var rec func(i int)
	rec = func(i int) {
		if cap > 0 && len(out) > cap {
			return
		}
		if i == nEdges {
			d2, err := d.WithKinds(kinds)
			if err != nil {
				return
			}
			if _, err := core.New(spec, d2); err != nil {
				return
			}
			out = append(out, d2)
			return
		}
		for _, k := range palette {
			kinds[i] = k
			rec(i + 1)
		}
	}
	rec(0)
	if cap > 0 && len(out) > cap {
		out = out[:cap]
	}
	return out
}

// Tune runs the full autotuner: enumerate every adequate shape up to
// opts.MaxEdges, sweep data-structure assignments from the palette, run the
// benchmark on each candidate, and return one Result per shape sorted by
// increasing cost, failed shapes last. This is the paper's §5 algorithm
// with the same contract: the cost metric is opaque.
func Tune(spec *core.Spec, opts Options, bench Benchmark) ([]Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shapes := EnumerateShapes(spec, EnumOptions{MaxEdges: opts.MaxEdges, KeyArity: opts.KeyArity})
	if len(shapes) == 0 {
		return nil, fmt.Errorf("autotuner: no adequate decompositions with ≤ %d edges", opts.MaxEdges)
	}
	// Flatten the (shape × assignment) nest into one job list so a bounded
	// worker pool can chew through every candidate; each candidate already
	// gets its own fresh relation inside runOne, so jobs share nothing.
	type job struct {
		shape int
		cand  *decomp.Decomp
		cost  float64
		err   error
	}
	pruned := make([][]diag.Diagnostic, len(shapes))
	if opts.Lint {
		for si, shape := range shapes {
			if ds := diag.Filter(lint.CheckBuilt(spec, shape), opts.LintSuppress); len(ds) > 0 {
				pruned[si] = ds
			}
		}
	}
	var jobs []*job
	for si, shape := range shapes {
		if pruned[si] != nil {
			continue
		}
		for _, cand := range Assignments(spec, shape, opts.palette(), opts.MaxAssignments) {
			jobs = append(jobs, &job{shape: si, cand: cand})
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			j.cost, j.err = runOne(spec, j.cand, opts.Timeout, bench)
		}
	} else {
		next := make(chan *job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range next {
					j.cost, j.err = runOne(spec, j.cand, opts.Timeout, bench)
				}
			}()
		}
		for _, j := range jobs {
			next <- j
		}
		close(next)
		wg.Wait()
	}

	// Reduce in enumeration order: per shape, the first minimum-cost
	// assignment wins, exactly as the sequential sweep decided — completion
	// order never influences the outcome.
	results := make([]Result, len(shapes))
	for si, shape := range shapes {
		results[si] = Result{Shape: shape.CanonicalShape(), Failed: true}
		if pruned[si] != nil {
			results[si].Pruned = true
			results[si].Diags = pruned[si]
		}
	}
	for _, j := range jobs {
		res := &results[j.shape]
		res.Tried++
		if j.err != nil {
			if res.Failed {
				res.Err = j.err
			}
			continue
		}
		if res.Failed || j.cost < res.Cost {
			res.Decomp, res.Cost, res.Failed, res.Err = j.cand, j.cost, false, nil
		}
	}
	for si := range results {
		if results[si].Decomp == nil {
			results[si].Decomp = shapes[si]
		}
	}
	sort.Slice(results, func(i, j int) bool {
		// Finished shapes by cost, then failed shapes, then pruned ones.
		if results[i].Pruned != results[j].Pruned {
			return !results[i].Pruned
		}
		if results[i].Failed != results[j].Failed {
			return !results[i].Failed
		}
		if results[i].Failed {
			return results[i].Shape < results[j].Shape
		}
		return results[i].Cost < results[j].Cost
	})
	return results, nil
}

// runOne benchmarks a single candidate, converting panics (e.g. a vector
// edge whose key range explodes) into errors so one hopeless candidate
// cannot abort the sweep.
func runOne(spec *core.Spec, d *decomp.Decomp, timeout time.Duration, bench Benchmark) (cost float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("autotuner: candidate panicked: %v", r)
		}
	}()
	r, err := core.New(spec, d)
	if err != nil {
		return 0, err
	}
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	return bench(r, deadline)
}
