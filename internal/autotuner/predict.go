package autotuner

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/plan"
	"repro/internal/relation"
)

// A ProfileOp is one operation class of a workload profile, used for static
// cost prediction: the AutoAdmin-style alternative (discussed in §7) to the
// paper's measure-everything autotuner. Weights are relative frequencies.
type ProfileOp struct {
	Kind   ProfileKind
	In     []string // pattern columns (queries, removes)
	Out    []string // output columns (queries)
	Weight float64
}

// ProfileKind discriminates profile operations.
type ProfileKind uint8

// Profile operation kinds.
const (
	ProfileQuery ProfileKind = iota
	ProfileInsert
	ProfileRemove
)

// Predict estimates the cost of running the profile against decomposition d
// using the query planner's cost model (§4.3) with the given statistics —
// no data is touched. It returns the weighted cost sum.
func Predict(spec *core.Spec, d *decomp.Decomp, profile []ProfileOp, stats plan.Stats) (float64, error) {
	if stats == nil {
		stats = plan.DefaultStats
	}
	pl := plan.NewPlanner(d, spec.FDs, stats)
	all := spec.Cols()
	total := 0.0
	for _, op := range profile {
		w := op.Weight
		if w == 0 {
			w = 1
		}
		switch op.Kind {
		case ProfileQuery:
			cand, err := pl.Best(relation.NewCols(op.In...), relation.NewCols(op.Out...))
			if err != nil {
				return 0, fmt.Errorf("autotuner: profile query %v→%v: %w", op.In, op.Out, err)
			}
			total += w * cand.Cost
		case ProfileInsert:
			// Locate-or-create along every edge: one lookup plus one
			// insertion per edge instance.
			cost := 0.0
			for _, e := range d.Edges() {
				fan := stats.Fanout(e)
				cost += dstruct.LookupCost(e.DS, fan) + dstruct.InsertCost(e.DS, fan)
			}
			total += w * cost
		case ProfileRemove:
			// Find the doomed tuples, then break each edge crossing the
			// cut for the pattern's columns.
			cand, err := pl.Best(relation.NewCols(op.In...), all)
			if err != nil {
				return 0, fmt.Errorf("autotuner: profile remove %v: %w", op.In, err)
			}
			cost := cand.Cost
			inY := d.Cut(spec.FDs, relation.NewCols(op.In...))
			for _, e := range d.Edges() {
				if !inY[e.Parent] && inY[e.Target] {
					cost += dstruct.DeleteCost(e.DS, stats.Fanout(e))
				}
			}
			total += w * cost
		default:
			return 0, fmt.Errorf("autotuner: unknown profile op kind %d", op.Kind)
		}
	}
	return total, nil
}

// A Prediction pairs a candidate decomposition with its statically
// predicted cost.
type Prediction struct {
	Decomp *decomp.Decomp
	Cost   float64
}

// PredictRank enumerates decompositions exactly like Tune but ranks them by
// the static cost model instead of measurement. Candidates the profile
// cannot run on (no valid plan) are dropped.
//
// With uniform fanout assumptions the multiplicative estimator E cannot
// tell a lookup-then-scan from a scan-then-lookup (both multiply to the
// same number), so PredictRank profiles each candidate on the given data
// sample first — §4.3's "recorded as part of a profiling run" — and feeds
// the measured per-edge counts to the estimator. A few hundred sample
// tuples suffice; no workload executes, so this remains far cheaper than
// Tune. With a nil sample the default uniform statistics are used.
func PredictRank(spec *core.Spec, opts Options, profile []ProfileOp, sample []relation.Tuple) ([]Prediction, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	shapes := EnumerateShapes(spec, EnumOptions{MaxEdges: opts.MaxEdges, KeyArity: opts.KeyArity})
	var out []Prediction
	for _, shape := range shapes {
		best := Prediction{}
		found := false
		for _, cand := range Assignments(spec, shape, opts.palette(), opts.MaxAssignments) {
			stats, err := sampleStats(spec, cand, sample)
			if err != nil {
				continue
			}
			cost, err := Predict(spec, cand, profile, stats)
			if err != nil {
				continue
			}
			if !found || cost < best.Cost {
				best, found = Prediction{Decomp: cand, Cost: cost}, true
			}
		}
		if found {
			out = append(out, best)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out, nil
}

// sampleStats loads the sample into a fresh instance of the candidate and
// measures its per-edge fanouts. Hopeless candidates (e.g. a vector edge
// whose key range explodes on the sample) are reported as errors.
func sampleStats(spec *core.Spec, d *decomp.Decomp, sample []relation.Tuple) (stats plan.Stats, err error) {
	if len(sample) == 0 {
		return nil, nil
	}
	defer func() {
		if r := recover(); r != nil {
			stats, err = nil, fmt.Errorf("autotuner: sampling panicked: %v", r)
		}
	}()
	r, err := core.New(spec, d)
	if err != nil {
		return nil, err
	}
	for _, t := range sample {
		// FD-violating sample tuples are simply skipped.
		_ = r.Insert(t)
	}
	return plan.MeasuredStats(r.Instance()), nil
}
