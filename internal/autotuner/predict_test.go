package autotuner_test

import (
	"testing"
	"time"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/dstruct"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/workload"
)

func TestPredictPrefersIndexedLookups(t *testing.T) {
	spec := graphSpec()
	profile := []autotuner.ProfileOp{
		{Kind: autotuner.ProfileQuery, In: []string{"src"}, Out: []string{"dst"}, Weight: 10},
		{Kind: autotuner.ProfileInsert, Weight: 1},
	}
	// A hash-indexed chain must predict cheaper than an all-list chain for
	// a lookup-heavy profile.
	indexed, err := autotuner.Predict(spec, paperex.GraphDecomp1(), profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	lists, err := paperex.GraphDecomp1().WithKinds([]dstruct.Kind{dstruct.DListKind, dstruct.DListKind})
	if err != nil {
		t.Fatal(err)
	}
	listCost, err := autotuner.Predict(spec, lists, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if indexed >= listCost {
		t.Errorf("indexed decomposition (%.1f) not predicted cheaper than list chain (%.1f)", indexed, listCost)
	}
}

func TestPredictRejectsImpossibleProfile(t *testing.T) {
	spec := graphSpec()
	if _, err := autotuner.Predict(spec, paperex.GraphDecomp1(),
		[]autotuner.ProfileOp{{Kind: autotuner.ProfileQuery, In: []string{"src"}, Out: []string{"nonexistent"}}}, nil); err == nil {
		t.Errorf("profile over unknown column accepted")
	}
}

func TestPredictRankOrdersShapes(t *testing.T) {
	spec := graphSpec()
	profile := []autotuner.ProfileOp{
		{Kind: autotuner.ProfileQuery, In: []string{"src"}, Out: []string{"dst"}, Weight: 5},
		{Kind: autotuner.ProfileQuery, In: []string{"dst"}, Out: []string{"src"}, Weight: 5},
		{Kind: autotuner.ProfileInsert, Weight: 1},
	}
	preds, err := autotuner.PredictRank(spec, autotuner.Options{
		MaxEdges: 3, KeyArity: 1,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 8,
	}, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) < 5 {
		t.Fatalf("only %d predictions", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1].Cost > preds[i].Cost {
			t.Fatalf("predictions not sorted")
		}
	}
}

// TestPredictionAgreesWithMeasurement is the cost-model validation: on a
// small bidirectional-traversal workload, the statically predicted best
// shape must rank near the top of the measured order.
func TestPredictionAgreesWithMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measured sweep")
	}
	spec := graphSpec()
	opts := autotuner.Options{
		MaxEdges: 2, KeyArity: 1,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 8,
		Timeout:        2 * time.Second,
	}
	profile := []autotuner.ProfileOp{
		{Kind: autotuner.ProfileQuery, In: []string{"src"}, Out: []string{"dst"}, Weight: 10},
		{Kind: autotuner.ProfileInsert, Weight: 1},
	}
	edges := workload.RoadNetwork(10, 3)
	var sample []relation.Tuple
	for _, e := range edges[:min(len(edges), 400)] {
		sample = append(sample, paperex.EdgeTuple(e.Src, e.Dst, e.Weight))
	}
	preds, err := autotuner.PredictRank(spec, opts, profile, sample)
	if err != nil {
		t.Fatal(err)
	}

	measured, err := autotuner.Tune(spec, opts, func(r *core.Relation, deadline time.Time) (float64, error) {
		start := time.Now()
		for _, e := range edges {
			if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
				return 0, err
			}
		}
		for rep := 0; rep < 10; rep++ {
			for v := int64(0); v < 100; v++ {
				err := r.QueryFunc(relation.NewTuple(relation.BindInt("src", v)), []string{"dst"},
					func(relation.Tuple) bool { return true })
				if err != nil {
					return 0, err
				}
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return 0, autotuner.ErrTimeout
			}
		}
		return time.Since(start).Seconds(), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The predicted winner's shape must be within the top third of the
	// measured ranking (the cost model is a heuristic, not an oracle).
	predBest := preds[0].Decomp.CanonicalShape()
	limit := len(measured)/3 + 1
	for i, res := range measured {
		if res.Failed {
			break
		}
		if res.Decomp.CanonicalShape() == predBest {
			if i >= limit {
				t.Errorf("predicted best shape ranked %d of %d measured", i+1, len(measured))
			}
			return
		}
	}
	t.Errorf("predicted best shape not found among measured results")
}
