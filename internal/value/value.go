// Package value defines the universe V of column values used by relational
// specifications: 64-bit integers and strings (the paper's universe includes
// the integers; strings make the case studies natural). Values are small,
// comparable with ==, totally ordered, and have a stable binary encoding that
// is used as a map key throughout the runtime.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind uint8

// The two kinds of values in the universe V.
const (
	Int Kind = iota
	String
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// A Value is a single element of the universe V. The zero Value is the
// integer 0. Values are comparable with == and can be used as map keys.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// OfInt returns the integer value v.
func OfInt(v int64) Value { return Value{kind: Int, i: v} }

// OfString returns the string value s.
func OfString(s string) Value { return Value{kind: String, s: s} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It panics if v is not an integer; use
// Kind to test first when the kind is not statically known.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic("value: Int called on " + v.kind.String() + " value")
	}
	return v.i
}

// AsInt is the comma-ok variant of Int: the integer payload and true, or
// (0, false) for a non-integer. Unlike Kind-test-then-Int it has no panic
// path, so it inlines into hot loops (the vectorized encode fast path).
func (v Value) AsInt() (int64, bool) {
	if v.kind != Int {
		return 0, false
	}
	return v.i, true
}

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != String {
		panic("value: Str called on " + v.kind.String() + " value")
	}
	return v.s
}

// Compare totally orders values: all integers precede all strings; integers
// order numerically and strings lexicographically. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case Int:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	default:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
}

// Less reports whether a orders strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// String renders the value for diagnostics: integers as decimal, strings
// quoted.
func (v Value) String() string {
	if v.kind == Int {
		return strconv.FormatInt(v.i, 10)
	}
	return strconv.Quote(v.s)
}

// AppendEncode appends a self-delimiting binary encoding of v to dst and
// returns the extended slice. Distinct values always have distinct
// encodings, and the encoding of a value is never a prefix of another
// value's encoding followed by arbitrary bytes within a well-formed stream,
// so concatenated encodings are unambiguous.
func (v Value) AppendEncode(dst []byte) []byte {
	if v.kind == Int {
		u := uint64(v.i)
		return append(dst, 'i',
			byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	n := len(v.s)
	dst = append(dst, 's',
		byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(dst, v.s...)
}

// EncodedSize returns len(v.AppendEncode(nil)) without encoding: 9 bytes
// for an integer, 5+len(s) for a string. Callers use it to preallocate
// exact-capacity key buffers.
func (v Value) EncodedSize() int {
	if v.kind == Int {
		return 9
	}
	return 5 + len(v.s)
}

// EncodeKey returns the binary encoding of v as a string suitable for use as
// a Go map key.
func (v Value) EncodeKey() string {
	return string(v.AppendEncode(make([]byte, 0, 16)))
}

// HashInto folds v's encoding into a running FNV-1a hash h without
// allocating; seed with HashSeed. Feeding the same value sequence always
// yields the same hash, so it can key shard routing.
func (v Value) HashInto(h uint64) uint64 {
	const prime = 1099511628211
	if v.kind == Int {
		h ^= 'i'
		h *= prime
		u := uint64(v.i)
		for shift := 56; shift >= 0; shift -= 8 {
			h ^= (u >> shift) & 0xff
			h *= prime
		}
		return h
	}
	h ^= 's'
	h *= prime
	n := uint32(len(v.s))
	for shift := 24; shift >= 0; shift -= 8 {
		h ^= uint64((n >> shift) & 0xff)
		h *= prime
	}
	for i := 0; i < len(v.s); i++ {
		h ^= uint64(v.s[i])
		h *= prime
	}
	return h
}

// HashSeed is the FNV-1a offset basis used to start a HashInto chain.
const HashSeed uint64 = 14695981039346656037

// Hash returns a 64-bit FNV-1a hash of the value's encoding.
func (v Value) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	if v.kind == Int {
		u := uint64(v.i)
		for shift := 0; shift < 64; shift += 8 {
			h ^= (u >> shift) & 0xff
			h *= prime
		}
		return h
	}
	for i := 0; i < len(v.s); i++ {
		h ^= uint64(v.s[i])
		h *= prime
	}
	return h ^ 0x5bd1e995 // separate int/string hash domains
}
