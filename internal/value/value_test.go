package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	i := OfInt(42)
	if i.Kind() != Int {
		t.Errorf("OfInt kind = %v, want Int", i.Kind())
	}
	if i.Int() != 42 {
		t.Errorf("Int() = %d, want 42", i.Int())
	}
	s := OfString("hello")
	if s.Kind() != String {
		t.Errorf("OfString kind = %v, want String", s.Kind())
	}
	if s.Str() != "hello" {
		t.Errorf("Str() = %q, want hello", s.Str())
	}
}

func TestZeroValue(t *testing.T) {
	var v Value
	if v.Kind() != Int || v.Int() != 0 {
		t.Errorf("zero Value = %v, want int 0", v)
	}
}

func TestAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Str on int value did not panic")
		}
	}()
	OfInt(1).Str()
}

func TestIntPanicsOnString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Int on string value did not panic")
		}
	}()
	OfString("x").Int()
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{OfInt(1), OfInt(2), -1},
		{OfInt(2), OfInt(1), 1},
		{OfInt(7), OfInt(7), 0},
		{OfInt(-5), OfInt(5), -1},
		{OfString("a"), OfString("b"), -1},
		{OfString("b"), OfString("a"), 1},
		{OfString("ab"), OfString("ab"), 0},
		{OfInt(1 << 40), OfString(""), -1}, // ints before strings
		{OfString(""), OfInt(-1 << 40), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Less(c.a, c.b); got != (c.want < 0) {
			t.Errorf("Less(%v, %v) = %v, want %v", c.a, c.b, got, c.want < 0)
		}
	}
}

func TestString(t *testing.T) {
	if got := OfInt(-3).String(); got != "-3" {
		t.Errorf("OfInt(-3).String() = %q", got)
	}
	if got := OfString("a\"b").String(); got != `"a\"b"` {
		t.Errorf("String value rendering = %q", got)
	}
}

func TestEncodeInjective(t *testing.T) {
	vals := []Value{
		OfInt(0), OfInt(1), OfInt(-1), OfInt(256), OfInt(1 << 40),
		OfString(""), OfString("0"), OfString("i"), OfString("\x00"),
		OfString("ab"), OfString("a\x00b"),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.EncodeKey()
		if prev, ok := seen[k]; ok {
			t.Errorf("encoding collision: %v and %v both encode to %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestEncodeConcatUnambiguous(t *testing.T) {
	// <int 1, string "x"> must differ from <string "", int ...> style
	// confusions when encodings are concatenated.
	a := string(OfInt(1).AppendEncode(nil)) + string(OfString("x").AppendEncode(nil))
	b := string(OfString("x").AppendEncode(nil)) + string(OfInt(1).AppendEncode(nil))
	if a == b {
		t.Errorf("concatenated encodings are order-insensitive")
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	gen := func(r *rand.Rand) Value {
		if r.Intn(2) == 0 {
			return OfInt(r.Int63n(100) - 50)
		}
		return OfString(string(rune('a' + r.Intn(4))))
	}
	// Antisymmetry + transitivity on random triples.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashConsistency(t *testing.T) {
	if OfInt(5).Hash() != OfInt(5).Hash() {
		t.Errorf("hash of equal ints differ")
	}
	if OfString("xy").Hash() != OfString("xy").Hash() {
		t.Errorf("hash of equal strings differ")
	}
	if OfInt(0).Hash() == OfString("").Hash() {
		t.Errorf("int 0 and empty string hash equal; want separated domains")
	}
}
