// Package colblock provides the flat columnar representation the vectorized
// execution tier (plan.CompileBatch) runs on: morsel-sized blocks of tuples
// stored column-wise as []Code, where a Code is one machine word encoding
// either a small integer inline or an index into a per-execution interning
// dictionary. Batch operators over blocks compare and move single words
// where the row-at-a-time tiers compare and move boxed value.Value structs,
// and a block's column is a dense array the hardware prefetches — the two
// properties the fused scan→filter→project loops of the batch tier exploit.
//
// Codes are only meaningful relative to the Dict that produced them, and
// only for that Dict's lifetime (until Reset): within it, equal values have
// equal codes and vice versa, so equality filters and deduplication run on
// raw word compares without touching the dictionary.
package colblock

import "repro/internal/value"

// A Code is one column value packed into a machine word. Bit 0 is the tag:
//
//	tag 0: an inline integer — the value is int64(code) >> 1 (arithmetic
//	       shift), so every int64 of at most 63 significant bits is
//	       represented without touching the dictionary;
//	tag 1: a dictionary reference — code >> 1 indexes the Dict that
//	       produced it (strings, and the rare integers of 64 significant
//	       bits).
type Code uint64

const dictTag = 1

// InlineInt packs i as a tag-0 code, reporting whether it fits (it fits iff
// the shift loses no information — at most 63 significant bits). It is
// exported, and small enough to inline, so hot batch loops can encode the
// overwhelmingly common case without a Dict method call.
func InlineInt(i int64) (Code, bool) {
	c := uint64(i) << 1
	if int64(c)>>1 != i {
		return 0, false
	}
	return Code(c), true
}

// EncodeInline encodes v without a dictionary when possible — the inline
// fast path of Dict.Encode as a free function small enough to inline into
// batch stage loops; on false the caller falls back to Dict.Encode.
func EncodeInline(v value.Value) (Code, bool) {
	if i, ok := v.AsInt(); ok {
		return InlineInt(i)
	}
	return 0, false
}

// dictRetain bounds how many interned values a Dict keeps across Recycle
// calls. Below the bound the table is retained so pooled steady-state
// executions re-intern nothing; above it the table is dropped to stop an
// adversarial value stream from pinning memory forever.
const dictRetain = 1 << 16

// A Dict interns values into codes for one batch execution (or a pooled
// sequence of them). It is not safe for concurrent use; the batch tier
// keeps one per pooled execution state.
type Dict struct {
	idx  map[value.Value]Code
	vals []value.Value
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{idx: make(map[value.Value]Code)}
}

// Encode returns v's code, interning v if it has none yet. Integers of at
// most 63 significant bits encode inline and never touch the table.
func (d *Dict) Encode(v value.Value) Code {
	if i, ok := v.AsInt(); ok {
		if c, ok := InlineInt(i); ok {
			return c
		}
	}
	if c, ok := d.idx[v]; ok {
		return c
	}
	c := Code(len(d.vals))<<1 | dictTag
	d.idx[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Find returns the code v would decode from, without interning: inline for
// small integers, the table entry if v was already interned, and ok=false
// otherwise. Filters use it so probing for a value that is not in the
// stream never grows the dictionary — a miss cannot equal any code a bound
// column holds, precisely because Encode would have interned it.
func (d *Dict) Find(v value.Value) (Code, bool) {
	if i, ok := v.AsInt(); ok {
		if c, ok := InlineInt(i); ok {
			return c, true
		}
	}
	c, ok := d.idx[v]
	return c, ok
}

// Decode returns the value c encodes. c must have come from this Dict (or
// be an inline integer) since its last Reset.
func (d *Dict) Decode(c Code) value.Value {
	if c&dictTag == 0 {
		return value.OfInt(int64(c) >> 1)
	}
	return d.vals[c>>1]
}

// Len returns the number of interned (non-inline) values.
func (d *Dict) Len() int { return len(d.vals) }

// Reset forgets every interned value; codes from before a Reset must not be
// decoded after it.
func (d *Dict) Reset() {
	clear(d.idx)
	d.vals = d.vals[:0]
}

// Recycle resets the dictionary only when it has grown past the retention
// bound. Pooled execution states call it on release: a steady-state
// workload keeps its (small) table and re-interns nothing, while a table
// bloated by a wide value stream is dropped.
func (d *Dict) Recycle() {
	if len(d.vals) > dictRetain {
		d.Reset()
	}
}

// MorselRows is the row granularity of block storage: column capacity grows
// in whole morsels (CeilRows), so a frontier that oscillates around a size
// never reallocates and a block stays cache-friendly at about 8 KiB per
// column per morsel.
const MorselRows = 1024

// CeilRows rounds n up to a whole number of morsels (minimum one), the
// capacity to allocate for a column expected to hold n rows.
func CeilRows(n int) int {
	if n <= MorselRows {
		return MorselRows
	}
	return (n + MorselRows - 1) / MorselRows * MorselRows
}

// A Block is a columnar batch of tuples: Cols[c][r] is row r of column c,
// and N is the row count. Column slices are exported raw — the batch tier's
// fused loops index and append to them directly; Block only carries the
// structure and the reuse discipline (Reset keeps capacity).
//
// Not every column need be populated to N rows at all times: the batch
// compiler sizes a column when the stage that first binds it runs. N is
// authoritative for how many rows the populated columns hold.
type Block struct {
	Cols [][]Code
	N    int
}

// NewBlock returns a block with nCols empty columns.
func NewBlock(nCols int) *Block {
	return &Block{Cols: make([][]Code, nCols)}
}

// Rows returns the row count.
func (b *Block) Rows() int { return b.N }

// Reset empties every column, keeping capacity.
func (b *Block) Reset() {
	for i := range b.Cols {
		b.Cols[i] = b.Cols[i][:0]
	}
	b.N = 0
}
