package colblock

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/value"
)

func TestCodeIntRoundTrip(t *testing.T) {
	d := NewDict()
	cases := []int64{0, 1, -1, 42, -42, math.MaxInt64 >> 1, math.MinInt64 >> 1,
		math.MaxInt64, math.MinInt64, math.MaxInt64>>1 + 1, math.MinInt64>>1 - 1}
	for _, i := range cases {
		v := value.OfInt(i)
		c := d.Encode(v)
		if got := d.Decode(c); got != v {
			t.Fatalf("Decode(Encode(%d)) = %v", i, got)
		}
	}
	// Exactly the four values outside 63 significant bits hit the table.
	if d.Len() != 4 {
		t.Fatalf("interned %d values, want 4 (only >63-bit ints)", d.Len())
	}
}

func TestCodeInlineBoundary(t *testing.T) {
	// The widest inline values: ±2^62 is the first magnitude that spills.
	for _, i := range []int64{math.MaxInt64 >> 1, math.MinInt64 >> 1} {
		if _, ok := InlineInt(i); !ok {
			t.Fatalf("inlineInt(%d) should fit", i)
		}
	}
	for _, i := range []int64{math.MaxInt64>>1 + 1, math.MinInt64>>1 - 1} {
		if _, ok := InlineInt(i); ok {
			t.Fatalf("inlineInt(%d) should not fit", i)
		}
	}
}

func TestDictStrings(t *testing.T) {
	d := NewDict()
	a := d.Encode(value.OfString("alpha"))
	b := d.Encode(value.OfString("beta"))
	if a == b {
		t.Fatal("distinct strings must get distinct codes")
	}
	if again := d.Encode(value.OfString("alpha")); again != a {
		t.Fatalf("re-encoding the same string changed its code: %d vs %d", again, a)
	}
	if got := d.Decode(a); got.Str() != "alpha" {
		t.Fatalf("Decode = %v", got)
	}
	// Equal value ⟺ equal code: the filter contract.
	if c, ok := d.Find(value.OfString("beta")); !ok || c != b {
		t.Fatalf("Find(beta) = %d,%v want %d,true", c, ok, b)
	}
	if _, ok := d.Find(value.OfString("gamma")); ok {
		t.Fatal("Find of an un-interned string must miss")
	}
	// Find never interns.
	if d.Len() != 2 {
		t.Fatalf("Find grew the dict to %d entries", d.Len())
	}
}

func TestDictResetAndRecycle(t *testing.T) {
	d := NewDict()
	d.Encode(value.OfString("x"))
	d.Reset()
	if d.Len() != 0 {
		t.Fatal("Reset kept entries")
	}
	if _, ok := d.Find(value.OfString("x")); ok {
		t.Fatal("Reset kept index entries")
	}
	// Below the retention bound, Recycle keeps the table.
	c := d.Encode(value.OfString("y"))
	d.Recycle()
	if got, ok := d.Find(value.OfString("y")); !ok || got != c {
		t.Fatal("Recycle below the bound must retain the table")
	}
	// Above the bound, Recycle drops it.
	for i := 0; d.Len() <= dictRetain; i++ {
		d.Encode(value.OfString(fmt.Sprintf("s%d", i)))
	}
	d.Recycle()
	if d.Len() != 0 {
		t.Fatalf("Recycle above the bound kept %d entries", d.Len())
	}
}

func TestBlockReset(t *testing.T) {
	b := NewBlock(3)
	if len(b.Cols) != 3 || b.Rows() != 0 {
		t.Fatalf("NewBlock: %d cols, %d rows", len(b.Cols), b.Rows())
	}
	for i := range b.Cols {
		b.Cols[i] = append(b.Cols[i], 1, 2, 3)
	}
	b.N = 3
	before := cap(b.Cols[0])
	b.Reset()
	if b.Rows() != 0 {
		t.Fatal("Reset kept rows")
	}
	for i := range b.Cols {
		if len(b.Cols[i]) != 0 {
			t.Fatalf("col %d not emptied", i)
		}
	}
	if cap(b.Cols[0]) != before {
		t.Fatal("Reset must keep capacity")
	}
}

func TestCeilRows(t *testing.T) {
	cases := map[int]int{
		0:              MorselRows,
		1:              MorselRows,
		MorselRows:     MorselRows,
		MorselRows + 1: 2 * MorselRows,
		3 * MorselRows: 3 * MorselRows,
	}
	for n, want := range cases {
		if got := CeilRows(n); got != want {
			t.Fatalf("CeilRows(%d) = %d, want %d", n, got, want)
		}
	}
}
