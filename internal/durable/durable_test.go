package durable_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/wal"
)

func schedSpec() *core.Spec {
	return &core.Spec{
		Name: "processes",
		Columns: []core.ColDef{
			{Name: "ns", Type: core.IntCol},
			{Name: "pid", Type: core.IntCol},
			{Name: "state", Type: core.IntCol},
			{Name: "cpu", Type: core.IntCol},
		},
		FDs: paperex.SchedulerFDs(),
	}
}

func open(t *testing.T, dir string, opts durable.Options) *core.DurableRelation {
	t.Helper()
	d, err := durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func state(t *testing.T, d *core.DurableRelation) []relation.Tuple {
	t.Helper()
	res, err := d.All()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func eqStates(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func seed(t *testing.T, d *core.DurableRelation, n int64) {
	t.Helper()
	for i := int64(0); i < n; i++ {
		if err := d.Insert(paperex.SchedulerTuple(i%4, i, i%2, i*2)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOpenCreateReopen covers the basic durability contract: everything
// acknowledged before Close is present after reopen, across all three
// fsync policies (Close flushes, so even SyncOff survives an orderly
// shutdown).
func TestOpenCreateReopen(t *testing.T) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := durable.Options{Create: true, Policy: policy, CheckFDs: true}
			d := open(t, dir, opts)
			seed(t, d, 30)
			key := relation.NewTuple(relation.BindInt("ns", 1), relation.BindInt("pid", 5))
			if _, err := d.Update(key, relation.NewTuple(relation.BindInt("cpu", 99))); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Remove(relation.NewTuple(relation.BindInt("ns", 2), relation.BindInt("pid", 6))); err != nil {
				t.Fatal(err)
			}
			want := state(t, d)
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			opts.Create = false
			d2 := open(t, dir, opts)
			defer d2.Close()
			if got := state(t, d2); !eqStates(got, want) {
				t.Fatalf("reopened state has %d tuples, want %d", len(got), len(want))
			}
			if err := d2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenRefusesUnknownDirectory: no manifest and no Create flag is an
// error, not an empty database.
func TestOpenRefusesUnknownDirectory(t *testing.T) {
	_, err := durable.Open(t.TempDir(), schedSpec(), paperex.SchedulerDecomp(), durable.Options{})
	if !errors.Is(err, durable.ErrNoRelation) {
		t.Fatalf("got %v, want ErrNoRelation", err)
	}
}

// TestManifestGuardsIdentity: reopening under a different name, schema,
// or shard layout must fail before any replay happens.
func TestManifestGuardsIdentity(t *testing.T) {
	dir := t.TempDir()
	d := open(t, dir, durable.Options{Create: true})
	seed(t, d, 4)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	renamed := schedSpec()
	renamed.Name = "threads"
	if _, err := durable.Open(dir, renamed, paperex.SchedulerDecomp(), durable.Options{}); err == nil || !strings.Contains(err.Error(), "holds relation") {
		t.Errorf("renamed spec: %v", err)
	}
	wider := schedSpec()
	wider.Columns = append(wider.Columns, core.ColDef{Name: "prio", Type: core.IntCol})
	if _, err := durable.Open(dir, wider, paperex.SchedulerDecomp(), durable.Options{}); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Errorf("widened spec: %v", err)
	}
	if _, err := durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), durable.Options{Shards: 4, ShardKey: []string{"ns", "pid"}}); err == nil || !strings.Contains(err.Error(), "tier") {
		t.Errorf("tier switch: %v", err)
	}
}

// TestTornTailDiscardedOnRecovery simulates a crash mid-append: trailing
// garbage after the last acknowledged record is discarded and counted,
// and the recovered state is exactly the acknowledged prefix.
func TestTornTailDiscardedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	d := open(t, dir, durable.Options{Create: true})
	seed(t, d, 10)
	want := state(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn frame header: fewer bytes than a header needs.
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	met := &obs.Metrics{}
	d2 := open(t, dir, durable.Options{Metrics: met})
	defer d2.Close()
	if got := state(t, d2); !eqStates(got, want) {
		t.Fatalf("recovered %d tuples, want %d", len(got), len(want))
	}
	snap := met.Snapshot()
	if snap.RecoveryDiscards != 1 {
		t.Errorf("recovery.discards = %d, want 1", snap.RecoveryDiscards)
	}
	if snap.RecoveryReplays != 10 {
		t.Errorf("recovery.replays = %d, want 10", snap.RecoveryReplays)
	}
}

// TestMidLogCorruptionFailsOpen: damage before the tail is not a torn
// write and must fail recovery loudly.
func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	d := open(t, dir, durable.Options{Create: true})
	seed(t, d, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), durable.Options{}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestCheckpointBoundsReplay: after a checkpoint, recovery replays only
// the records the snapshot does not cover.
func TestCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	d := open(t, dir, durable.Options{Create: true})
	seed(t, d, 50)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := int64(50); i < 57; i++ {
		if err := d.Insert(paperex.SchedulerTuple(i%4, i, i%2, i)); err != nil {
			t.Fatal(err)
		}
	}
	want := state(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	met := &obs.Metrics{}
	d2 := open(t, dir, durable.Options{Metrics: met})
	defer d2.Close()
	if got := state(t, d2); !eqStates(got, want) {
		t.Fatalf("recovered %d tuples, want %d", len(got), len(want))
	}
	if n := met.Snapshot().RecoveryReplays; n != 7 {
		t.Errorf("recovery.replays = %d, want 7 (snapshot covers the first 50)", n)
	}
}

// TestShardedReopen: the sharded tier recovers each shard cell from its
// own log and the union passes the cross-shard invariant check.
func TestShardedReopen(t *testing.T) {
	dir := t.TempDir()
	opts := durable.Options{
		Create:   true,
		Shards:   4,
		ShardKey: []string{"ns", "pid"},
		Workers:  2,
		CheckFDs: true,
	}
	d := open(t, dir, opts)
	var batch []relation.Tuple
	for i := int64(0); i < 60; i++ {
		batch = append(batch, paperex.SchedulerTuple(i%5, i, i%2, i))
	}
	if err := d.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Remove(relation.NewTuple(relation.BindInt("state", 1))); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	key := relation.NewTuple(relation.BindInt("ns", 0), relation.BindInt("pid", 10))
	if _, err := d.Update(key, relation.NewTuple(relation.BindInt("cpu", 1234))); err != nil {
		t.Fatal(err)
	}
	want := state(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	opts.Create = false
	d2 := open(t, dir, opts)
	defer d2.Close()
	if got := state(t, d2); !eqStates(got, want) {
		t.Fatalf("recovered %d tuples, want %d", len(got), len(want))
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryFaultLeavesNoTornState is the regression test for replay
// routing through the COW publish path: a fault injected during replay
// must fail Open loudly (error) or abort it (panic) without leaving any
// partially-applied or poisoned state, and a plain retry must succeed
// with the full acknowledged state.
func TestRecoveryFaultLeavesNoTornState(t *testing.T) {
	dir := t.TempDir()
	d := open(t, dir, durable.Options{Create: true, CheckFDs: true})
	seed(t, d, 12)
	want := state(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	p := faultinject.NewPlane()
	faultinject.Install(p)
	defer faultinject.Uninstall()

	// Error at every replay step in turn.
	for step := int64(1); ; step++ {
		p.Reset()
		p.Arm(step, faultinject.Error)
		got, err := durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), durable.Options{CheckFDs: true})
		if len(p.Fired()) == 0 {
			if err != nil {
				t.Fatalf("step %d: no fault fired yet Open failed: %v", step, err)
			}
			got.Close()
			if step == 1 {
				t.Fatal("no recovery.apply step was ever reached")
			}
			break
		}
		if err == nil {
			got.Close()
			t.Fatalf("step %d: injected fault not surfaced by Open", step)
		}
		if got != nil {
			t.Fatalf("step %d: failed Open returned a non-nil relation", step)
		}
	}

	// Panic mid-replay: recovery must not trap the panic into torn state;
	// a later clean Open still recovers everything. Panics inside the
	// engine's own mutation machinery are contained to errors, so to
	// exercise the propagating case the fault is aimed at a recovery.apply
	// step itself.
	p.Trace(true)
	p.Reset()
	if clean, err := durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), durable.Options{CheckFDs: true}); err != nil {
		t.Fatal(err)
	} else {
		clean.Close()
	}
	applyStep := int64(0)
	for i, pi := range p.Points() {
		if pi.Site == "recovery.apply" {
			applyStep = int64(i + 1)
			break
		}
	}
	p.Trace(false)
	if applyStep == 0 {
		t.Fatal("no recovery.apply point traced during a clean Open")
	}
	p.Reset()
	p.Arm(applyStep, faultinject.Panic)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("armed panic did not propagate out of Open")
			}
		}()
		durable.Open(dir, schedSpec(), paperex.SchedulerDecomp(), durable.Options{CheckFDs: true})
	}()

	p.Reset()
	p.Disarm()
	d2 := open(t, dir, durable.Options{CheckFDs: true})
	defer d2.Close()
	if got := state(t, d2); !eqStates(got, want) {
		t.Fatalf("post-fault recovery diverged: %d tuples, want %d", len(got), len(want))
	}
	if err := d2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWalCounters pins the observability contract of the write path:
// wal.appends counts acknowledged records, wal.fsyncs the forced syncs,
// ckpt.writes the completed checkpoints.
func TestWalCounters(t *testing.T) {
	dir := t.TempDir()
	met := &obs.Metrics{}
	d := open(t, dir, durable.Options{Create: true, Metrics: met})
	seed(t, d, 5)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	if snap.WalAppends != 5 {
		t.Errorf("wal.appends = %d, want 5", snap.WalAppends)
	}
	if snap.WalFsyncs < 5 {
		t.Errorf("wal.fsyncs = %d, want >= 5 under SyncAlways", snap.WalFsyncs)
	}
	if snap.WalBytes == 0 {
		t.Error("wal.bytes = 0")
	}
	if snap.CkptWrites != 1 {
		t.Errorf("ckpt.writes = %d, want 1", snap.CkptWrites)
	}
	if snap.CkptBytes == 0 {
		t.Error("ckpt.bytes = 0")
	}
	if s := snap.String(); !strings.Contains(s, "wal.appends") {
		t.Errorf("metrics rendering lacks wal.appends:\n%s", s)
	}
}
