package durable_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/paperex"
	"repro/internal/relation"
	"repro/internal/wal"
)

// FuzzRecovery drives a durable relation through a fuzzer-chosen sequence
// of mutations and checkpoints, then simulates a crash by truncating or
// flipping bytes at a fuzzer-chosen position in the log, and reopens.
// The recovery contract under arbitrary damage:
//
//   - durable.Open either succeeds or fails loudly — it never panics; and
//   - when it succeeds, the recovered α is exactly one of the states the
//     relation actually acknowledged during the run — never a torn
//     hybrid, never a state containing a tuple that was never committed.
//
// Damage confined to the log's unsynced tail reads as a torn write and
// is discarded; damage anywhere else must be reported as corruption.
//
// Run the full fuzzer with `make fuzz` (or `go test ./internal/durable
// -fuzz=FuzzRecovery`); the committed corpus under testdata/fuzz replays
// as ordinary subtests of `go test`.
func FuzzRecovery(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 5, 0, 9, 3, 0, 0, 17, 1, 4, 250, 3})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 128, 64})
	f.Add([]byte{2, 9, 3, 1, 44, 0, 7, 2, 61, 3, 2, 255, 255, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		spec := schedSpec()
		d, err := durable.Open(dir, spec, paperex.SchedulerDecomp(), durable.Options{
			Create:   true,
			Policy:   wal.SyncAlways,
			CheckFDs: true,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}

		// Every state the relation passes through is acknowledged the
		// moment the mutation returns; all of them are legitimate
		// recovery targets for some crash point.
		acked := map[string]bool{}
		record := func() {
			ts, aerr := d.All()
			if aerr != nil {
				t.Fatalf("α: %v", aerr)
			}
			acked[fuzzCanon(ts)] = true
		}
		record()

		// The last two bytes choose the damage; the rest drive ops in
		// 5-byte frames. Mutations may fail FD checks — that is the
		// engine refusing the op, and the state simply stays put.
		ops := data
		if len(ops) > 2 {
			ops = ops[:len(ops)-2]
		}
		bi := relation.BindInt
		for i := 0; i+4 < len(ops); i += 5 {
			op, a, b, c, v := ops[i]%4, int64(ops[i+1]%3), int64(ops[i+2]%3), int64(ops[i+3]%2), int64(ops[i+4]%4)
			switch op {
			case 0:
				_ = d.Insert(paperex.SchedulerTuple(a, b, c, v))
			case 1:
				_, _ = d.Remove(relation.NewTuple(bi("ns", a), bi("pid", b)))
			case 2:
				_, _ = d.Update(relation.NewTuple(bi("ns", a), bi("pid", b)), relation.NewTuple(bi("cpu", v)))
			case 3:
				if cerr := d.Checkpoint(); cerr != nil {
					t.Fatalf("checkpoint: %v", cerr)
				}
			}
			record()
		}

		// Crash: abandon the handle (Close only releases descriptors;
		// under SyncAlways every acknowledged record is already on disk)
		// and damage the log file.
		d.Close()
		logPath := filepath.Join(dir, "wal.log")
		raw, rerr := os.ReadFile(logPath)
		if rerr != nil {
			t.Fatalf("read log: %v", rerr)
		}
		if len(data) >= 2 && len(raw) > 0 {
			mode, at := data[len(data)-2], int(data[len(data)-1])
			if mode%2 == 0 {
				// Torn write: drop a suffix of the log.
				raw = raw[:len(raw)-at%(len(raw)+1)]
			} else {
				// Bit rot: flip one byte.
				raw[at%len(raw)] ^= 0xff
			}
			if werr := os.WriteFile(logPath, raw, 0o644); werr != nil {
				t.Fatalf("damage log: %v", werr)
			}
		}

		d2, oerr := durable.Open(dir, spec, paperex.SchedulerDecomp(), durable.Options{
			Policy:   wal.SyncAlways,
			CheckFDs: true,
		})
		if oerr != nil {
			// Loud refusal is a correct answer to damage — mid-log
			// corruption, a log truncated below its header next to a
			// checkpoint, a chewed-up manifest. Silent wrong state is
			// the only failure.
			return
		}
		defer d2.Close()
		ts, aerr := d2.All()
		if aerr != nil {
			t.Fatalf("recovered α: %v", aerr)
		}
		if got := fuzzCanon(ts); !acked[got] {
			t.Fatalf("recovered a state that was never acknowledged:\n%s", got)
		}
		if ierr := d2.CheckInvariants(); ierr != nil {
			t.Fatalf("recovered instance ill-formed: %v", ierr)
		}
	})
}

// fuzzCanon renders a deterministic fingerprint of an α (All is sorted).
func fuzzCanon(ts []relation.Tuple) string {
	s := ""
	for _, t := range ts {
		s += fmt.Sprintf("%v\n", t)
	}
	return s
}
