// Package durable opens write-ahead-logged relations: it owns the
// on-disk directory layout (manifest, per-cell log and snapshot files),
// the crash-recovery protocol that rebuilds a relation from its latest
// checkpoint plus the log tail, and the validation that refuses to
// recover from a directory whose manifest disagrees with the requested
// specification.
//
// Layout. A durable relation lives in one directory:
//
//	<dir>/MANIFEST            identity: name, columns, tier, sharding
//	<dir>/wal.log             sync tier: the cell's write-ahead log
//	<dir>/snap-<seq>.snap     sync tier: checkpoints (highest seq wins)
//	<dir>/shard-NNN/...       sharded tier: one cell directory per shard
//
// Recovery. Open loads each cell's highest-numbered valid snapshot (if
// any), scans its log — discarding a torn tail, failing loudly on
// mid-log corruption — and replays the records the snapshot does not
// cover through the engine's normal copy-on-write publish path
// (core.ReplaySnapshot / core.ReplayCommit). Replaying through the COW
// path is a correctness property, not a convenience: a fault mid-replay
// drops an unpublished fork, so a failed recovery leaves no torn or
// poisoned state behind and Open can simply be retried.
//
// The log records logical deltas (full tuples), so recovery is
// representation-independent: a directory written under one
// decomposition recovers under any other decomposition of the same
// relation.
package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// Options configures Open.
type Options struct {
	// Create permits initializing an empty directory. Without it, Open
	// fails if dir holds no durable relation — the guard against typo'd
	// paths silently starting an empty database.
	Create bool

	// Policy is the WAL fsync policy (default wal.SyncAlways). Interval
	// is the group-commit tick under wal.SyncInterval (default
	// wal.DefaultInterval).
	Policy   wal.SyncPolicy
	Interval time.Duration

	// Shards selects the sharded tier when > 0; ShardKey, Workers and
	// AllowNonKey configure it exactly like core.ShardOptions. Shards == 0
	// opens the single-cell sync tier.
	Shards      int
	ShardKey    []string
	Workers     int
	AllowNonKey bool

	// CheckFDs enables per-mutation FD checking on the underlying engine.
	CheckFDs bool

	// Metrics, when set, is attached to the engine and receives the WAL
	// and recovery counters (wal.appends, recovery.replays, ...).
	Metrics *obs.Metrics
}

// manifest is the durable relation's identity record, written once at
// creation and validated on every open. It pins the facts that must not
// drift underneath an existing log: the relation's name and columns
// (replay would misinterpret tuples), the tier, and the shard layout
// (tuples are partitioned on disk by the original shard key and count).
type manifest struct {
	Format   int      `json:"format"`
	Name     string   `json:"name"`
	Columns  []string `json:"columns"`
	Tier     string   `json:"tier"` // "sync" or "sharded"
	Shards   int      `json:"shards,omitempty"`
	ShardKey []string `json:"shard_key,omitempty"`
}

const (
	manifestName   = "MANIFEST"
	manifestFormat = 1
	logName        = "wal.log"
)

// ErrNoRelation is returned by Open without Options.Create when the
// directory holds no durable relation.
var ErrNoRelation = errors.New("durable: directory holds no durable relation")

func specColumns(spec *core.Spec) []string {
	cols := make([]string, len(spec.Columns))
	for i, c := range spec.Columns {
		cols[i] = c.Name + ":" + c.Type.String()
	}
	return cols
}

func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest in %s is not valid JSON: %w", dir, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("durable: manifest in %s has format %d, this build reads %d", dir, m.Format, manifestFormat)
	}
	return &m, nil
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate refuses to recover when the directory's identity disagrees
// with the caller's: a mismatch means the log's tuples would be
// reinterpreted under a different schema, which is silent corruption.
func (m *manifest) validate(spec *core.Spec, opts Options) error {
	if m.Name != spec.Name {
		return fmt.Errorf("durable: directory holds relation %q, caller opened %q", m.Name, spec.Name)
	}
	if want := specColumns(spec); !eqStrings(m.Columns, want) {
		return fmt.Errorf("durable: directory columns %v != spec columns %v", m.Columns, want)
	}
	tier := "sync"
	if opts.Shards > 0 {
		tier = "sharded"
	}
	if m.Tier != tier {
		return fmt.Errorf("durable: directory holds a %s-tier relation, caller requested %s", m.Tier, tier)
	}
	if opts.Shards > 0 {
		if m.Shards != opts.Shards {
			return fmt.Errorf("durable: directory is sharded %d ways, caller requested %d", m.Shards, opts.Shards)
		}
		if !eqStrings(m.ShardKey, opts.ShardKey) {
			return fmt.Errorf("durable: directory shard key %v != requested %v", m.ShardKey, opts.ShardKey)
		}
	}
	return nil
}

// Open opens (or with Options.Create, initializes) the durable relation
// in dir and recovers it to the state of the last acknowledged write:
// latest valid checkpoint plus WAL tail, replayed through the engine's
// copy-on-write publish path. Torn trailing log records — an append cut
// short by a crash — are detected by CRC and discarded, counted in
// Metrics.RecoveryDiscards; everything else that fails to verify fails
// Open loudly, returning a nil relation.
func Open(dir string, spec *core.Spec, d *decomp.Decomp, opts Options) (*core.DurableRelation, error) {
	if opts.Policy < wal.SyncAlways || opts.Policy > wal.SyncOff {
		return nil, fmt.Errorf("durable: unknown sync policy %d", opts.Policy)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m, err := readManifest(dir)
	switch {
	case errors.Is(err, os.ErrNotExist):
		if !opts.Create {
			return nil, fmt.Errorf("%w: %s (set Options.Create to initialize)", ErrNoRelation, dir)
		}
		m = &manifest{
			Format:  manifestFormat,
			Name:    spec.Name,
			Columns: specColumns(spec),
			Tier:    "sync",
		}
		if opts.Shards > 0 {
			m.Tier, m.Shards, m.ShardKey = "sharded", opts.Shards, opts.ShardKey
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := writeManifest(dir, *m); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, err
	default:
		if err := m.validate(spec, opts); err != nil {
			return nil, err
		}
	}

	cfg := wal.Config{Policy: opts.Policy, Interval: opts.Interval, Metrics: opts.Metrics}
	if opts.Shards > 0 {
		return openSharded(dir, spec, d, opts, cfg)
	}
	return openSync(dir, spec, d, opts, cfg)
}

func openSync(dir string, spec *core.Spec, d *decomp.Decomp, opts Options, cfg wal.Config) (*core.DurableRelation, error) {
	r, err := core.New(spec, d)
	if err != nil {
		return nil, err
	}
	r.CheckFDs = opts.CheckFDs
	s := core.NewSync(r)
	log, err := recoverCell(dir, cfg, opts.Metrics,
		func(ts []relation.Tuple) error { return core.ReplaySnapshot(s, ts) },
		func(c wal.Commit) error { return core.ReplayCommit(s, c) })
	if err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		s.SetMetrics(opts.Metrics)
	}
	return core.NewDurableSync(s, log), nil
}

func openSharded(dir string, spec *core.Spec, d *decomp.Decomp, opts Options, cfg wal.Config) (*core.DurableRelation, error) {
	sr, err := core.NewSharded(spec, d, core.ShardOptions{
		ShardKey:    opts.ShardKey,
		Shards:      opts.Shards,
		Workers:     opts.Workers,
		AllowNonKey: opts.AllowNonKey,
	})
	if err != nil {
		return nil, err
	}
	if opts.CheckFDs {
		sr.SetCheckFDs(true)
	}
	logs := make([]*wal.Log, opts.Shards)
	for i := range logs {
		cellDir := filepath.Join(dir, core.ShardDirName(i))
		if err := os.MkdirAll(cellDir, 0o755); err != nil {
			closeLogs(logs[:i])
			return nil, err
		}
		shard := i
		logs[i], err = recoverCell(cellDir, cfg, opts.Metrics,
			func(ts []relation.Tuple) error { return core.ReplayShardSnapshot(sr, shard, ts) },
			func(c wal.Commit) error { return core.ReplayShardCommit(sr, shard, c) })
		if err != nil {
			closeLogs(logs[:i])
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if opts.Metrics != nil {
		sr.SetMetrics(opts.Metrics)
	}
	return core.NewDurableSharded(sr, logs)
}

func closeLogs(logs []*wal.Log) {
	for _, l := range logs {
		if l != nil {
			l.Close()
		}
	}
}

// recoverCell rebuilds one cell: pick the highest valid snapshot, scan
// the log, replay snapshot then uncovered records through the supplied
// COW-path appliers, and reopen the log for appending. Returns the open
// log; any error leaves nothing to clean up (the log is the last thing
// opened).
func recoverCell(cellDir string, cfg wal.Config, met *obs.Metrics,
	applySnap func([]relation.Tuple) error, applyCommit func(wal.Commit) error) (*wal.Log, error) {
	fi := faultinject.Active()
	logPath := filepath.Join(cellDir, logName)

	snapPath, snapSeq, hasSnap, err := latestSnapshot(cellDir)
	if err != nil {
		return nil, err
	}

	scan, err := wal.ReadLog(logPath)
	switch {
	case errors.Is(err, os.ErrNotExist) || errors.Is(err, wal.ErrNoHeader):
		if hasSnap {
			// A checkpoint always rotates to a fresh log with a valid
			// header; a snapshot without one means the log was lost.
			return nil, fmt.Errorf("durable: %s has checkpoint %s but no usable log: %w", cellDir, filepath.Base(snapPath), err)
		}
		scan = nil
	case err != nil:
		return nil, err
	default:
		if hasSnap && scan.BaseSeq > snapSeq+1 {
			return nil, fmt.Errorf("durable: log %s starts at record %d but checkpoint covers only through %d: records lost", logPath, scan.BaseSeq, snapSeq)
		}
	}

	if hasSnap {
		ts, seq, err := wal.ReadSnapshot(snapPath)
		if err != nil {
			return nil, err
		}
		if seq != snapSeq {
			return nil, fmt.Errorf("durable: snapshot %s declares sequence %d, name says %d", snapPath, seq, snapSeq)
		}
		if fi != nil {
			if err := fi.Point("recovery.apply", true); err != nil {
				return nil, err
			}
		}
		if err := applySnap(ts); err != nil {
			return nil, err
		}
	}

	replayed := uint64(0)
	if scan != nil {
		for _, c := range scan.Commits {
			if c.Seq <= snapSeq {
				continue
			}
			if fi != nil {
				if err := fi.Point("recovery.apply", true); err != nil {
					return nil, err
				}
			}
			if err := applyCommit(c); err != nil {
				return nil, err
			}
			replayed++
		}
	}
	if met != nil {
		met.RecoveryReplays.Add(replayed)
		if scan != nil {
			met.RecoveryDiscards.Add(uint64(scan.Discarded))
		}
	}

	if scan == nil {
		return wal.Create(logPath, snapSeq+1, cfg)
	}
	return wal.OpenForAppend(logPath, scan, cfg)
}

// latestSnapshot finds the highest-numbered checkpoint file in cellDir,
// ignoring temporaries. Ignoring rather than deleting: recovery must be
// read-only until it has decided the directory is sane.
func latestSnapshot(cellDir string) (path string, seq uint64, ok bool, err error) {
	entries, err := os.ReadDir(cellDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return "", 0, false, nil
		}
		return "", 0, false, err
	}
	for _, e := range entries {
		if s, isSnap := core.ParseSnapshotName(e.Name()); isSnap && (!ok || s > seq) {
			path, seq, ok = filepath.Join(cellDir, e.Name()), s, true
		}
	}
	return path, seq, ok, nil
}
