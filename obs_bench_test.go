package repro

// Overhead benchmarks for the observability plane. Each benchmark runs the
// same hot loop twice — metrics detached (the default) and attached — so a
// benchstat comparison of the off/on sub-benchmarks bounds the cost of the
// plane. The acceptance bar is that the "off" runs stay within noise of the
// pre-obs baselines (BENCH_compiled.json / BenchmarkShardedThroughput): a
// disabled plane is a nil check per counter site and nothing else.
//
//	make bench-obs            # writes BENCH_obs.json
//	go test -bench Obs -count 6 . | benchstat -col /metrics -

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/paperex"
	"repro/internal/relation"
)

func obsBenchRelation(b testing.TB, n int) *core.Relation {
	b.Helper()
	r, err := core.New(processesSpec(), paperex.SchedulerDecomp())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tup := paperex.SchedulerTuple(int64(i%16), int64(i/16), paperex.StateR, int64(i%8))
		if err := r.Insert(tup); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func withObsModes(b *testing.B, run func(b *testing.B, m *obs.Metrics)) {
	b.Helper()
	for _, mode := range []struct {
		name string
		m    *obs.Metrics
	}{
		{"metrics=off", nil},
		{"metrics=on", &obs.Metrics{}},
	} {
		b.Run(mode.name, func(b *testing.B) { run(b, mode.m) })
	}
}

// BenchmarkObsPointQuery is the compiled keyed-lookup hot path: one plan
// cache hit plus one program execution per op, the same shape the
// BenchmarkCompiled* plan benchmarks isolate.
func BenchmarkObsPointQuery(b *testing.B) {
	withObsModes(b, func(b *testing.B, m *obs.Metrics) {
		r := obsBenchRelation(b, 4096)
		r.SetMetrics(m)
		pat := relation.NewTuple(relation.BindInt("ns", 3), relation.BindInt("pid", 7))
		out := []string{"cpu"}
		if _, err := r.Query(pat, out); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Query(pat, out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsInsertRemove is the two-phase mutation hot path: every op
// counts a logical op, a validate, and an apply when metrics are on.
func BenchmarkObsInsertRemove(b *testing.B) {
	withObsModes(b, func(b *testing.B, m *obs.Metrics) {
		r := obsBenchRelation(b, 1024)
		r.SetMetrics(m)
		tup := paperex.SchedulerTuple(99, 1, paperex.StateS, 3)
		pat := relation.NewTuple(relation.BindInt("ns", 99), relation.BindInt("pid", 1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.Insert(tup); err != nil {
				b.Fatal(err)
			}
			if _, err := r.Remove(pat); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsShardedRouted is the sharded point path: routing, a plan
// cache hit, and the compiled point access, with the per-shard metrics
// fan-in on top when enabled.
func BenchmarkObsShardedRouted(b *testing.B) {
	withObsModes(b, func(b *testing.B, m *obs.Metrics) {
		sr, err := core.NewSharded(processesSpec(), paperex.SchedulerDecomp(), core.ShardOptions{ShardKey: []string{"ns", "pid"}})
		if err != nil {
			b.Fatal(err)
		}
		sr.SetMetrics(m)
		for i := 0; i < 4096; i++ {
			tup := paperex.SchedulerTuple(int64(i%16), int64(i/16), paperex.StateR, int64(i%8))
			if err := sr.Insert(tup); err != nil {
				b.Fatal(err)
			}
		}
		pats := make([]relation.Tuple, 64)
		for i := range pats {
			pats[i] = relation.NewTuple(relation.BindInt("ns", int64(i%16)), relation.BindInt("pid", int64(i)))
		}
		out := []string{"cpu"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sr.Query(pats[i%len(pats)], out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsTraced adds a ring tracer on top of metrics: the worst-case
// fully-instrumented configuration, for sizing the tracing cost (an Event
// struct write per span, no locks beyond the ring's).
func BenchmarkObsTraced(b *testing.B) {
	r := obsBenchRelation(b, 4096)
	r.SetMetrics(&obs.Metrics{})
	r.SetTracer(obs.NewRingTracer(1024))
	pat := relation.NewTuple(relation.BindInt("ns", 3), relation.BindInt("pid", 7))
	out := []string{"cpu"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Query(pat, out); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity check so the root package also exercises the expvar publisher.
func TestObsPublishSmoke(t *testing.T) {
	r := obsBenchRelation(t, 0)
	m := &obs.Metrics{}
	r.SetMetrics(m)
	if err := m.Publish(fmt.Sprintf("bench.%p", m)); err != nil {
		t.Fatal(err)
	}
}
