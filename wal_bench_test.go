package repro

// Durable-tier benchmarks: what the write-ahead log costs on the append
// path and what recovery costs as the log grows.
//
//	make bench-wal         # writes BENCH_wal.json
//	benchstat -col /policy BENCH_wal.json
//
// BenchmarkWALAppend inserts distinct flows through core.DurableRelation
// under each fsync policy. SyncAlways pays one fsync per acknowledged
// commit — its ns/op IS the disk's sync latency, and the fsyncs/op metric
// should sit at ~1. SyncInterval and SyncOff acknowledge from the OS
// buffer cache, so their ns/op tracks the in-memory engine plus encoding.
//
// BenchmarkWALRecovery prepares a directory holding an N-mutation
// history (one sub-benchmark also checkpoints mid-history, bounding the
// tail to N/2) and times durable.Open end to end: header scan, snapshot
// load, CRC-checked decode, and replay through the copy-on-write publish
// path. The 100k-op legs are the headline numbers; replays/s is reported
// so runs with different histories compare directly. Preparing those
// histories takes a few seconds per run — they are built outside the
// timed region but inside the sub-benchmark, so expect bench-wal to take
// a minute or two at COUNT=6.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/durable"
	"repro/internal/fd"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

func walBenchSpec() *core.Spec {
	return &core.Spec{
		Name: "flows",
		Columns: []core.ColDef{
			{Name: "local", Type: core.IntCol},
			{Name: "foreign", Type: core.IntCol},
			{Name: "bytes", Type: core.IntCol},
		},
		FDs: fd.NewSet(fd.FD{
			From: relation.NewCols("local", "foreign"),
			To:   relation.NewCols("bytes"),
		}),
	}
}

func walBenchDecomp() *decomp.Decomp {
	return decomp.MustNew([]decomp.Binding{
		decomp.Let("w", []string{"local", "foreign"}, []string{"bytes"},
			decomp.U("bytes")),
		decomp.Let("y", []string{"local"}, []string{"foreign", "bytes"},
			decomp.M(dstruct.HTableKind, "w", "foreign")),
		decomp.Let("x", nil, []string{"local", "foreign", "bytes"},
			decomp.M(dstruct.HTableKind, "y", "local")),
	}, "x")
}

func walBenchTuple(i int) relation.Tuple {
	return relation.NewTuple(
		relation.BindInt("local", int64(i%1024)),
		relation.BindInt("foreign", int64(i)),
		relation.BindInt("bytes", int64(i)*100),
	)
}

func openWALBench(b *testing.B, dir string, create bool, policy wal.SyncPolicy, met *obs.Metrics) *core.DurableRelation {
	b.Helper()
	d, err := durable.Open(dir, walBenchSpec(), walBenchDecomp(), durable.Options{
		Create:  create,
		Policy:  policy,
		Metrics: met,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		b.Run("policy="+policy.String(), func(b *testing.B) {
			met := &obs.Metrics{}
			d := openWALBench(b, b.TempDir(), true, policy, met)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := d.Insert(walBenchTuple(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			snap := met.Snapshot()
			b.ReportMetric(float64(snap.WalFsyncs)/float64(b.N), "fsyncs/op")
			b.ReportMetric(float64(snap.WalBytes)/float64(b.N), "walB/op")
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkWALRecovery(b *testing.B) {
	for _, cfg := range []struct {
		ops  int
		ckpt bool
	}{
		{10_000, false},
		{100_000, false},
		{100_000, true},
	} {
		name := fmt.Sprintf("ops=%d", cfg.ops)
		if cfg.ckpt {
			name += "-ckpt"
		}
		b.Run(name, func(b *testing.B) {
			if testing.Short() && cfg.ops > 10_000 {
				b.Skip("100k-op history prep skipped under -short")
			}
			// Prepare the history once, untimed. SyncOff keeps the prep
			// fast; the orderly Close flushes everything to disk.
			dir := b.TempDir()
			d := openWALBench(b, dir, true, wal.SyncOff, nil)
			for i := 0; i < cfg.ops; i++ {
				if err := d.Insert(walBenchTuple(i)); err != nil {
					b.Fatal(err)
				}
				if cfg.ckpt && i == cfg.ops/2 {
					if err := d.Checkpoint(); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}

			met := &obs.Metrics{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d2 := openWALBench(b, dir, false, wal.SyncOff, met)
				b.StopTimer()
				if d2.Len() != cfg.ops {
					b.Fatalf("recovered %d tuples, want %d", d2.Len(), cfg.ops)
				}
				if err := d2.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			b.StopTimer()
			snap := met.Snapshot()
			b.ReportMetric(float64(snap.RecoveryReplays)/b.Elapsed().Seconds(), "replays/s")
		})
	}
}
