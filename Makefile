# Development entry points. `make ci` is what a checkout must pass; the
# bench targets emit benchstat-compatible output (use `make bench > old.txt`,
# change things, `make bench > new.txt`, then `benchstat old.txt new.txt`).

GO ?= go
BENCH ?= .
COUNT ?= 6

.PHONY: ci vet build test race bench bench-sharded fmt-check

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Repeated runs (-count) so benchstat can report variance; -benchmem for
# allocation deltas alongside time.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) .

bench-sharded:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput' -count $(COUNT) .
