# Development entry points. `make ci` is what a checkout must pass; the
# bench targets emit benchstat-compatible output (use `make bench > old.txt`,
# change things, `make bench > new.txt`, then `benchstat old.txt new.txt`).

GO ?= go
BENCH ?= .
COUNT ?= 6

.PHONY: ci ci-race vet build test race bench bench-sharded bench-compiled fmt-check

ci: vet build race

# The race gate plus an explicit rerun of the compiled-vs-interpreter
# differential tests (plan-level and engine-level) — the properties that
# must hold before anything touching the compiled tier merges.
ci-race: vet build race
	$(GO) test -race -count 2 -run 'Differential' ./internal/plan ./internal/core

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Repeated runs (-count) so benchstat can report variance; -benchmem for
# allocation deltas alongside time.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) .

bench-sharded:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput' -count $(COUNT) .

# Interpreted-vs-compiled pairs for every plan shape, as `go test -json`
# events; BENCH_compiled.json is the committed snapshot of the machine the
# compiled tier landed on.
bench-compiled:
	$(GO) test -run '^$$' -bench '(Scan|Enumerate|Join|Collect)(Interpreted|Compiled)$$' -benchmem -count $(COUNT) -json ./internal/plan > BENCH_compiled.json
