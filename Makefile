# Development entry points. `make ci` is what a checkout must pass; the
# bench targets emit benchstat-compatible output (use `make bench > old.txt`,
# change things, `make bench > new.txt`, then `benchstat old.txt new.txt`).

GO ?= go
BENCH ?= .
COUNT ?= 6
FAULTSEEDS ?= 8

.PHONY: ci ci-race vet build test race bench bench-sharded bench-compiled bench-obs bench-vec bench-mvcc bench-wal bench-repl bench-smoke test-vec fmt-check faultinject fuzz fuzz-smoke lint lint-engine

ci: vet build race test-vec faultinject lint lint-engine fuzz-smoke bench-smoke

# The static-analysis plane, all three layers: the decomposition linter
# over every checked-in spec (relvet0xx — adequacy, storage redundancy,
# cost smells), the Go-plane multichecker over the whole module
# (relvet1xx — engine misuse in client and generated packages; one
# invocation, `go list ./...` already includes examples/), and the
# codegen contract (relvet105 — regenerated output must be
# gofmt-idempotent and analyzer-clean). relvet is built once into bin/
# rather than `go run` three times. All legs must exit 0 on a healthy
# checkout; zero standing suppressions — enforced by
# TestNoStandingSuppressions in internal/vet.
lint: bin/relvet
	$(GO) run ./cmd/relc -lint spec/*.rel
	bin/relvet ./...
	bin/relvet -gen spec/*.rel

# The engine-invariant plane (relvet2xx): the interprocedural analyzers
# turned inward on internal/core, instance, dstruct, durable, and wal —
# COW write containment, lock-free read purity, WAL-before-publish
# ordering, and atomic-pointer publication discipline. Exemptions only
# via //relvet:role annotations, never //relvet:ignore.
lint-engine: bin/relvet
	bin/relvet -engine

bin/relvet: $(shell find cmd/relvet internal -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o bin/relvet ./cmd/relvet

# The race gate plus an explicit rerun of the execution-tier differential
# tests (plan-level and engine-level, including the randomized vectorized
# corpus) — the properties that must hold before anything touching the
# compiled or vectorized tiers merges — and the concurrent fault-injection
# schedule, whose containment paths (fan-out recover, lock release on
# contained panics) are what -race is for.
ci-race: vet build race
	$(GO) test -race -count 2 -run 'Differential|Vectorized' ./internal/plan ./internal/core
	$(GO) test -race -count 2 -run 'Concurrent|Randomized' ./internal/faultinject/harness -faultseeds $(FAULTSEEDS)
	$(GO) test -race -count 1 -run 'ExhaustiveWALSharded|WALRecovery' ./internal/faultinject/harness
	$(GO) test -race -count 1 -run 'PartitionPrefix|ReplResubscribe' ./internal/repl ./internal/faultinject/harness
	$(GO) test -race -count 1 -run 'EngineCorpus|EngineCleanOnModule' ./internal/vet

# The vectorized-tier gate: the randomized corpus differential (every plan
# in the corpus executed on the interpreter, the closure tier, and the
# batch tier, results compared pairwise) plus the engine-level provenance
# and fallback-accounting tests.
test-vec:
	$(GO) test -count 1 -run 'Vectorized' ./internal/plan ./internal/core

# The fault-injection gate: exhaustive per-step injection over the harness
# corpus plus FAULTSEEDS randomized schedules per case. `make ci` runs it
# with the default seed count; raise FAULTSEEDS for a soak.
faultinject:
	$(GO) test -count 1 ./internal/faultinject
	$(GO) test -count 1 ./internal/faultinject/harness -faultseeds $(FAULTSEEDS)

# The crash-recovery fuzzer: random op histories, random torn/corrupt
# damage to the log, reopen, and compare against the acknowledged states.
# fuzz-smoke replays the committed corpus and runs a short randomized
# burst (part of `make ci`); `make fuzz` soaks for longer — new inputs it
# finds land in the build cache, promote keepers into
# internal/durable/testdata/fuzz/FuzzRecovery.
fuzz:
	$(GO) test -count 1 -run '^FuzzRecovery$$' -fuzz 'FuzzRecovery' -fuzztime 60s ./internal/durable

fuzz-smoke:
	$(GO) test -count 1 -run '^FuzzRecovery$$' ./internal/durable
	$(GO) test -count 1 -run '^FuzzRecovery$$' -fuzz 'FuzzRecovery' -fuzztime 5s ./internal/durable

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Repeated runs (-count) so benchstat can report variance; -benchmem for
# allocation deltas alongside time.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count $(COUNT) .

bench-sharded:
	$(GO) test -run '^$$' -bench 'BenchmarkShardedThroughput' -count $(COUNT) .

# Interpreted-vs-compiled pairs for every plan shape, as `go test -json`
# events; BENCH_compiled.json is the committed snapshot of the machine the
# compiled tier landed on.
bench-compiled:
	$(GO) test -run '^$$' -bench '(Scan|Enumerate|Join|Collect)(Interpreted|Compiled)$$' -benchmem -count $(COUNT) -json ./internal/plan > BENCH_compiled.json

# Closure-vs-vectorized pairs for every plan shape, as `go test -json`
# events; BENCH_vec.json is the committed snapshot of the machine the
# vectorized tier landed on (methodology in DESIGN.md — the vectorized
# legs decode and sum every output cell, so they do at least as much
# per-row work as the closure legs they are compared against).
bench-vec:
	$(GO) test -run '^$$' -bench '(Scan|Enumerate|Join|Collect)(Compiled|Vectorized)$$' -benchmem -count $(COUNT) -json ./internal/plan > BENCH_vec.json

# One iteration of every execution-tier benchmark: not a measurement, a
# smoke test that the benchmark fixtures still build and run. Part of
# `make ci` so bench-only regressions cannot land silently.
bench-smoke:
	$(GO) test -run '^$$' -bench '(Scan|Enumerate|Join|Collect)(Interpreted|Compiled|Vectorized)$$' -benchtime 10x ./internal/plan
	$(GO) test -run '^$$' -bench 'MVCC' -benchtime 10x .
	$(GO) test -run '^$$' -bench 'WAL' -benchtime 1x -short .
	$(GO) test -run '^$$' -bench 'Repl' -benchtime 1x -short .

# Observability-plane overhead: each BenchmarkObs* runs its hot loop with
# metrics off and on; compare with `benchstat -col /metrics BENCH_obs.json`
# (after converting from -json) or eyeball the off/on pairs. The off runs
# must stay within noise of the pre-obs baselines.
bench-obs:
	$(GO) test -run '^$$' -bench 'Obs' -benchmem -count $(COUNT) -json . > BENCH_obs.json

# Read-mostly throughput of the MVCC snapshot tiers (SyncRelation,
# ShardedRelation) against an RWMutex-wrapped single relation — the
# pre-MVCC design — across 90/10 and 99/1 read/write mixes at 8/16/64
# goroutines, with reads/s and writes/s reported per configuration.
# Compare with `benchstat -col /impl BENCH_mvcc.json`; the goroutine
# scaling columns only separate on hosts with real core counts (see the
# header comment in mvcc_bench_test.go).
bench-mvcc:
	$(GO) test -run '^$$' -bench 'MVCC' -benchmem -count $(COUNT) -json . > BENCH_mvcc.json

# WAL append throughput per fsync policy plus recovery time against log
# length (the 100k-op legs are the headline; a mid-history checkpoint leg
# shows the tail bound). Compare with `benchstat -col /policy` for the
# append grid; BENCH_wal.json is the committed snapshot of the machine
# the durable tier landed on. History prep makes this the slowest bench
# target — about a minute at COUNT=6.
bench-wal:
	$(GO) test -run '^$$' -bench 'WAL' -benchmem -count $(COUNT) -json . > BENCH_wal.json

# Replication throughput and catch-up: end-to-end ship rate through a
# connected follower, tail-replay and snapshot-bootstrap catch-up rates,
# and the replica-side read path under a live 90/10 stream (maxlag
# reports the deepest backlog the probe observed). BENCH_repl.json is
# the committed snapshot of the machine the replication tier landed on.
bench-repl:
	$(GO) test -run '^$$' -bench 'Repl' -benchmem -count $(COUNT) -json . > BENCH_repl.json
