package repro

// Read-mostly throughput benchmarks for the MVCC snapshot tiers. Each
// configuration runs a fixed op mix (90/10 or 99/1 read/write) across 8,
// 16, or 64 goroutines against three engines over the same scheduler
// decomposition:
//
//   - rwmutex:  an RWMutex wrapper around one *core.Relation — the
//     pre-MVCC SyncRelation design, kept here as the baseline. Readers
//     share RLock but every write stalls the whole reader population.
//   - sync:     core.SyncRelation — lock-free snapshot reads, writers
//     serialized on one mutex, copy-on-write publication.
//   - sharded:  core.ShardedRelation — lock-free snapshot reads with
//     writers serialized per shard.
//
// Beyond ns/op the benchmarks report reads/s and writes/s so the two
// populations can be compared directly:
//
//	make bench-mvcc        # writes BENCH_mvcc.json
//	benchstat -col /impl BENCH_mvcc.json
//
// The acceptance bar for the MVCC tiers is ≥4× the baseline's read
// throughput at 64 goroutines on the 99/1 mix with write throughput
// within 2× of the baseline's. That bar assumes real read parallelism:
// the lock-free win is readers proceeding on other cores while a write
// is in flight, which a single-core host cannot exhibit — there, reads
// cost the same CPU under every tier and the grid degenerates to a
// relative cost comparison (the sharded tier still leads on write-heavier
// mixes because RWMutex writer preference parks the whole reader
// population on every write). Interpret BENCH_mvcc.json against the host
// core count recorded in its goos/cpu header lines.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/paperex"
	"repro/internal/relation"
)

const (
	mvccKeys   = 4096 // seeded rows; ns in [0,16), pid in [0,256)
	mvccNSMod  = 16
	mvccPidDiv = 16
	// The state column spreads over 64 values so the per-state run-queue
	// DLists hold ~64 entries, the regime the paper's Figure 2(a) intrusive
	// lists are sized for. DList.Clone is an eager O(len) copy, so COW
	// write cost is proportional to the fan-out of the widest list node on
	// the spine — a giant 2-state seed would benchmark the list copy, not
	// the concurrency tier.
	mvccStates = 64
)

// mvccEngine is the surface the mix loop drives; all three implementations
// run the same keyed point query and keyed update.
type mvccEngine interface {
	Query(pat relation.Tuple, out []string) ([]relation.Tuple, error)
	Update(s, u relation.Tuple) (int, error)
}

// rwRelation is the pre-MVCC concurrency tier: one relation, one RWMutex,
// queries under RLock, mutations under Lock.
type rwRelation struct {
	mu sync.RWMutex
	r  *core.Relation
}

func (w *rwRelation) Query(pat relation.Tuple, out []string) ([]relation.Tuple, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.r.Query(pat, out)
}

func (w *rwRelation) Update(s, u relation.Tuple) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.r.Update(s, u)
}

func mvccSeed(b *testing.B, insert func(relation.Tuple) error) {
	b.Helper()
	for i := 0; i < mvccKeys; i++ {
		tup := paperex.SchedulerTuple(int64(i%mvccNSMod), int64(i/mvccPidDiv), int64(i%mvccStates), int64(i%8))
		if err := insert(tup); err != nil {
			b.Fatal(err)
		}
	}
}

func mvccEngines(b *testing.B) []struct {
	name string
	e    mvccEngine
} {
	b.Helper()
	base, err := core.New(processesSpec(), paperex.SchedulerDecomp())
	if err != nil {
		b.Fatal(err)
	}
	rw := &rwRelation{r: base}
	mvccSeed(b, base.Insert)

	s := core.NewSync(mustRelation(b))
	mvccSeed(b, s.Insert)

	sr, err := core.NewSharded(processesSpec(), paperex.SchedulerDecomp(),
		core.ShardOptions{ShardKey: []string{"ns", "pid"}, Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	mvccSeed(b, sr.Insert)

	return []struct {
		name string
		e    mvccEngine
	}{
		{"rwmutex", rw},
		{"sync", s},
		{"sharded", sr},
	}
}

func mustRelation(b *testing.B) *core.Relation {
	b.Helper()
	r, err := core.New(processesSpec(), paperex.SchedulerDecomp())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// runMix drives b.N operations split evenly across g goroutines. Operation
// i of each goroutine is a keyed update when i%period == 0 and a keyed
// point query otherwise, so the read fraction is exactly (period-1)/period
// regardless of scheduling. Reports reads/s and writes/s alongside ns/op.
func runMix(b *testing.B, e mvccEngine, g, period int) {
	out := []string{"cpu"}
	// Warm the plan cache outside the timed region.
	warm := relation.NewTuple(relation.BindInt("ns", 0), relation.BindInt("pid", 0))
	if _, err := e.Query(warm, out); err != nil {
		b.Fatal(err)
	}
	var reads, writes atomic.Int64
	perG := b.N/g + 1
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Cheap per-goroutine xorshift so key choice costs no locks.
			rnd := uint64(w)*0x9e3779b97f4a7c15 + 0x1234567
			var nr, nw int64
			for i := 0; i < perG; i++ {
				rnd ^= rnd << 13
				rnd ^= rnd >> 7
				rnd ^= rnd << 17
				k := rnd % mvccKeys
				key := relation.NewTuple(
					relation.BindInt("ns", int64(k%mvccNSMod)),
					relation.BindInt("pid", int64(k/mvccPidDiv)))
				if i%period == 0 {
					u := relation.NewTuple(relation.BindInt("cpu", int64(i%8)))
					if _, err := e.Update(key, u); err != nil {
						b.Error(err)
						return
					}
					nw++
				} else {
					if _, err := e.Query(key, out); err != nil {
						b.Error(err)
						return
					}
					nr++
				}
			}
			reads.Add(nr)
			writes.Add(nw)
		}(w)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	b.ReportMetric(float64(reads.Load())/sec, "reads/s")
	b.ReportMetric(float64(writes.Load())/sec, "writes/s")
}

// BenchmarkMVCCReadMostly is the headline grid: engine × mix × goroutines.
func BenchmarkMVCCReadMostly(b *testing.B) {
	mixes := []struct {
		name   string
		period int
	}{
		{"90-10", 10},
		{"99-1", 100},
	}
	for _, mix := range mixes {
		for _, g := range []int{8, 16, 64} {
			for _, eng := range mvccEngines(b) {
				b.Run(fmt.Sprintf("mix=%s/g=%d/impl=%s", mix.name, g, eng.name), func(b *testing.B) {
					runMix(b, eng.e, g, mix.period)
				})
			}
		}
	}
}
