// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation (§6), plus ablations for the
// design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Scales are reduced so the full suite runs in minutes; cmd/paperbench
// regenerates the figures at larger scale with flags.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/autotuner"
	"repro/internal/core"
	"repro/internal/decomp"
	"repro/internal/dstruct"
	"repro/internal/experiments"
	"repro/internal/gen/graphedges"
	"repro/internal/paperex"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/systems/ipcap"
	"repro/internal/systems/thttpdcache"
	"repro/internal/systems/ztopo"
	"repro/internal/value"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 11: the graph micro-benchmark. Per-decomposition benches reproduce
// the figure's bars for the three representative decompositions (Figure 12)
// in all three variants (F, F+B, F+B+D); the Sweep bench runs a reduced
// autotuner enumeration like the full figure.

func benchGraph(b *testing.B, mk func() *decomp.Decomp, phase string) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, edges, nodes := graphBenchRelation(b, mk())
		b.StartTimer()
		times, err := experiments.RunGraphBench(r, edges, nodes, time.Time{})
		if err != nil {
			b.Fatal(err)
		}
		switch phase {
		case "F":
			b.ReportMetric(times.F, "F-s/op")
		case "FB":
			b.ReportMetric(times.FB, "FB-s/op")
		default:
			b.ReportMetric(times.FBD, "FBD-s/op")
		}
	}
}

func BenchmarkFig11Decomp1(b *testing.B) {
	for _, phase := range []string{"F", "FB", "FBD"} {
		b.Run(phase, func(b *testing.B) { benchGraph(b, paperex.GraphDecomp1, phase) })
	}
}

func BenchmarkFig11Decomp5(b *testing.B) {
	for _, phase := range []string{"F", "FB", "FBD"} {
		b.Run(phase, func(b *testing.B) { benchGraph(b, paperex.GraphDecomp5, phase) })
	}
}

func BenchmarkFig11Decomp9(b *testing.B) {
	for _, phase := range []string{"F", "FB", "FBD"} {
		b.Run(phase, func(b *testing.B) { benchGraph(b, paperex.GraphDecomp9, phase) })
	}
}

// BenchmarkFig11Generated runs the same workload through the relc-generated
// edge relation (decomposition 5's shape), the compiled deployment mode.
func BenchmarkFig11Generated(b *testing.B) {
	edges := workload.RoadNetwork(benchGridN, 11)
	nodes := workload.NodeCount(benchGridN)
	for i := 0; i < b.N; i++ {
		g := graphedges.New()
		for _, e := range edges {
			if _, err := g.Insert(graphedges.Tuple{Src: e.Src, Dst: e.Dst, Weight: e.Weight}); err != nil {
				b.Fatal(err)
			}
		}
		dfs := func(succs func(v int64, visit func(int64))) {
			visited := make([]bool, nodes)
			var stack []int64
			for v0 := 0; v0 < nodes; v0++ {
				if visited[v0] {
					continue
				}
				stack = append(stack[:0], int64(v0))
				for len(stack) > 0 {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if visited[v] {
						continue
					}
					visited[v] = true
					succs(v, func(n int64) {
						if !visited[n] {
							stack = append(stack, n)
						}
					})
				}
			}
		}
		dfs(func(v int64, visit func(int64)) {
			g.QueryBySrcSelDst(v, func(d int64) bool { visit(d); return true })
		})
		dfs(func(v int64, visit func(int64)) {
			g.QueryByDstSelSrc(v, func(s int64) bool { visit(s); return true })
		})
		for _, e := range edges {
			g.RemoveByDstSrc(e.Dst, e.Src)
		}
		if g.Len() != 0 {
			b.Fatal("edges left after deletion")
		}
	}
}

// BenchmarkFig11Sweep runs a reduced autotuner sweep (size ≤ 2) per
// iteration — the full figure is cmd/paperbench fig11.
func BenchmarkFig11Sweep(b *testing.B) {
	cfg := experiments.Fig11Config{
		GridN: 8, Seed: 5, MaxEdges: 2,
		Palette:        []dstruct.Kind{dstruct.HTableKind, dstruct.DListKind},
		MaxAssignments: 4,
		Timeout:        300 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 13: IpCap flow accounting. The named decompositions reproduce the
// figure's headline comparison: the tuned layout vs its transposition
// (the paper reports ≈5×) vs hand-coded vs relc-generated.

func benchIpcap(b *testing.B, table func() ipcap.FlowTable) {
	trace := workload.PacketTrace(30_000, 64, 200_000, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := ipcap.NewDaemon(table(), nil, 10_000)
		for _, p := range trace {
			if err := d.HandlePacket(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Handcoded(b *testing.B) {
	benchIpcap(b, func() ipcap.FlowTable { return ipcap.NewHandFlowTable() })
}

func BenchmarkFig13SynthDefault(b *testing.B) {
	benchIpcap(b, func() ipcap.FlowTable {
		t, err := ipcap.NewSynthFlowTable(ipcap.DefaultFlowDecomp())
		if err != nil {
			b.Fatal(err)
		}
		return t
	})
}

func BenchmarkFig13SynthTransposed(b *testing.B) {
	benchIpcap(b, func() ipcap.FlowTable {
		t, err := ipcap.NewSynthFlowTable(ipcap.TransposedFlowDecomp())
		if err != nil {
			b.Fatal(err)
		}
		return t
	})
}

func BenchmarkFig13Generated(b *testing.B) {
	benchIpcap(b, func() ipcap.FlowTable { return ipcap.NewGenFlowTable() })
}

func BenchmarkFig13GeneratedTransposed(b *testing.B) {
	benchIpcap(b, func() ipcap.FlowTable { return ipcap.NewGenTransposedFlowTable() })
}

// ---------------------------------------------------------------------------
// Table 1 / §6.2 parity: hand-coded vs interpreted vs relc-generated for
// each case-study system on its workload.

func BenchmarkParityThttpd(b *testing.B) {
	reqs := workload.Zipf(4000, 500, 1.1, 21)
	for _, v := range []struct {
		name string
		mk   func() thttpdcache.Cache
	}{
		{"handcoded", func() thttpdcache.Cache { return thttpdcache.NewHandCache() }},
		{"interpreted", func() thttpdcache.Cache {
			c, err := thttpdcache.NewSynthCache(thttpdcache.DefaultMapDecomp())
			if err != nil {
				b.Fatal(err)
			}
			return c
		}},
		{"generated", func() thttpdcache.Cache { return thttpdcache.NewGenCache() }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := thttpdcache.NewFileStore()
				srv := thttpdcache.NewServer(v.mk(), store, 64, 300)
				for _, r := range reqs {
					if _, err := srv.GetFile(fmt.Sprintf("/files/%d.html", r)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkParityZtopo(b *testing.B) {
	accesses := workload.Zipf(3000, 400, 1.1, 25)
	for _, v := range []struct {
		name string
		mk   func() ztopo.TileIndex
	}{
		{"handcoded", func() ztopo.TileIndex { return ztopo.NewHandTileIndex() }},
		{"interpreted", func() ztopo.TileIndex {
			x, err := ztopo.NewSynthTileIndex(ztopo.DefaultTileDecomp())
			if err != nil {
				b.Fatal(err)
			}
			return x
		}},
		{"generated", func() ztopo.TileIndex { return ztopo.NewGenTileIndex() }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := ztopo.NewTileStore(1 << 10)
				viewer := ztopo.NewViewer(v.mk(), store, 64<<10, 256<<10)
				for _, id := range accesses {
					if _, err := viewer.Tile(id); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// §6.1 scheduler and cache micro-benchmarks.

func BenchmarkScheduler(b *testing.B) {
	ops := workload.SchedulerTrace(10_000, 4, 100, 17)
	for _, v := range []struct {
		name string
		d    func() *decomp.Decomp
	}{
		{"figure2", paperex.SchedulerDecomp},
		{"flat-avl", func() *decomp.Decomp {
			return decomp.MustNew([]decomp.Binding{
				decomp.Let("w", []string{"ns", "pid"}, []string{"state", "cpu"},
					decomp.U("state", "cpu")),
				decomp.Let("root", nil, []string{"ns", "pid", "state", "cpu"},
					decomp.M(dstruct.AVLKind, "w", "ns", "pid")),
			}, "root")
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.New(experiments.SchedulerSpec(), v.d())
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := experiments.RunSchedulerBench(r, ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 1 (DESIGN.md): the paper's optimistic join cost model vs the
// pessimistic variant — measure the actual execution cost of each
// planner's chosen plan for the scheduler's state query.

func BenchmarkPlannerAblation(b *testing.B) {
	r, err := core.New(experiments.SchedulerSpec(), paperex.SchedulerDecomp())
	if err != nil {
		b.Fatal(err)
	}
	for ns := int64(0); ns < 8; ns++ {
		for pid := int64(0); pid < 64; pid++ {
			if err := r.Insert(paperex.SchedulerTuple(ns, pid, (ns+pid)%2, pid)); err != nil {
				b.Fatal(err)
			}
		}
	}
	in := relation.NewCols("ns", "state")
	out := relation.NewCols("pid")
	pattern := relation.NewTuple(relation.BindInt("ns", 3), relation.BindInt("state", 1))

	for _, v := range []struct {
		name        string
		pessimistic bool
	}{
		{"optimistic", false},
		{"pessimistic", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			pl := plan.NewPlanner(r.Decomp(), r.Spec().FDs, plan.MeasuredStats(r.Instance()))
			pl.Pessimistic = v.pessimistic
			cand, err := pl.Best(in, out)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			count := 0
			for i := 0; i < b.N; i++ {
				plan.Exec(r.Instance(), cand.Op, pattern, func(relation.Tuple) bool {
					count++
					return true
				})
			}
			if count == 0 {
				b.Fatal("query returned nothing")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 3 (DESIGN.md): empty-map cleanup on removal (§4.5).

func BenchmarkRemoveCleanup(b *testing.B) {
	edges := workload.RoadNetwork(12, 7)
	for _, v := range []struct {
		name    string
		cleanup bool
	}{
		{"with-cleanup", true},
		{"without-cleanup", false},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r, err := core.New(experiments.GraphSpec(), paperex.GraphDecomp5())
				if err != nil {
					b.Fatal(err)
				}
				r.Instance().CleanupEmpty = v.cleanup
				for _, e := range edges {
					if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				for _, e := range edges {
					pat := relation.NewTuple(relation.BindInt("src", e.Src), relation.BindInt("dst", e.Dst))
					if _, err := r.Remove(pat); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 4 (DESIGN.md): plan caching in the engine.

func BenchmarkPlanCache(b *testing.B) {
	for _, v := range []struct {
		name  string
		cache bool
	}{
		{"cached", true},
		{"uncached", false},
	} {
		b.Run(v.name, func(b *testing.B) {
			r, err := core.New(experiments.SchedulerSpec(), paperex.SchedulerDecomp())
			if err != nil {
				b.Fatal(err)
			}
			r.CachePlans = v.cache
			for pid := int64(0); pid < 50; pid++ {
				if err := r.Insert(paperex.SchedulerTuple(1, pid, pid%2, pid)); err != nil {
					b.Fatal(err)
				}
			}
			pat := relation.NewTuple(relation.BindInt("ns", 1), relation.BindInt("pid", 7))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Query(pat, []string{"cpu"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation 2 (DESIGN.md): node sharing (decomposition 5 vs 9) — memory
// side: shared decompositions allocate fewer nodes for the same relation.

func BenchmarkSharingNodeCount(b *testing.B) {
	edges := workload.RoadNetwork(12, 7)
	for _, v := range []struct {
		name string
		d    func() *decomp.Decomp
	}{
		{"shared-decomp5", paperex.GraphDecomp5},
		{"unshared-decomp9", paperex.GraphDecomp9},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.New(experiments.GraphSpec(), v.d())
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range edges {
					if err := r.Insert(paperex.EdgeTuple(e.Src, e.Dst, e.Weight)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Instance().NodeCount()), "nodes")
			}
		})
	}
}

// TestBenchmarkScalesSanity keeps the reduced benchmark scales honest: the
// workloads must be big enough that the decomposition differences the
// figures rely on are visible.
func TestBenchmarkScalesSanity(t *testing.T) {
	edges := workload.RoadNetwork(benchGridN, 11)
	if len(edges) < 500 {
		t.Fatalf("bench graph too small: %d edges", len(edges))
	}
	r1, _, nodes := graphBenchRelation(t, paperex.GraphDecomp1())
	r5, _, _ := graphBenchRelation(t, paperex.GraphDecomp5())
	t1, err := experiments.RunGraphBench(r1, edges, nodes, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	t5, err := experiments.RunGraphBench(r5, edges, nodes, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	// Decomposition 1's backward phase is quadratic; 5's is linear. The
	// backward increment must be clearly larger for 1.
	back1 := t1.FB - t1.F
	back5 := t5.FB - t5.F
	if back1 < 2*back5 {
		t.Errorf("backward traversal: decomp1 %.4fs vs decomp5 %.4fs — quadratic/linear gap not visible", back1, back5)
	}
}

var _ = autotuner.ErrTimeout // the sweep benchmark relies on its semantics

// ---------------------------------------------------------------------------
// Range-query extension: ordered seek vs unordered filter on the same
// workload — the complexity gap the dstruct.Ranger fast path buys.

// ---------------------------------------------------------------------------
// Concurrency tiers: the coarse-locked SyncRelation vs the hash-partitioned
// ShardedRelation on a mixed 90/10 keyed read/write workload over the IpCap
// flow relation, across goroutine counts. The acceptance target for the
// sharded tier is ≥3× the sync tier's ops/sec at 8 goroutines with no
// regression at 1.

func BenchmarkShardedThroughput(b *testing.B) {
	const flows = 8192
	for _, eng := range []struct {
		name string
		mk   func(b *testing.B) experiments.ConcurrentEngine
	}{
		{"sync", func(b *testing.B) experiments.ConcurrentEngine {
			r, err := core.New(ipcap.FlowSpec(), ipcap.DefaultFlowDecomp())
			if err != nil {
				b.Fatal(err)
			}
			return core.NewSync(r)
		}},
		{"sharded", func(b *testing.B) experiments.ConcurrentEngine {
			sr, err := core.NewSharded(ipcap.FlowSpec(), ipcap.DefaultFlowDecomp(), core.ShardOptions{
				ShardKey: []string{"local", "foreign"},
			})
			if err != nil {
				b.Fatal(err)
			}
			return sr
		}},
	} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", eng.name, g), func(b *testing.B) {
				e := eng.mk(b)
				if err := experiments.PreloadFlows(e, flows); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				secs, err := experiments.DriveMixed(e, b.N, g, 90, 29)
				if err != nil {
					b.Fatal(err)
				}
				if secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "ops/sec")
				}
			})
		}
	}
}

// BenchmarkQueryAllocs pins the allocation behaviour of the collect path:
// plan-cost-sized result maps and reused scratch buffers keep the steady
// state of keyed point queries and range queries at a handful of small
// allocations per op (the result tuples themselves).
func BenchmarkQueryAllocs(b *testing.B) {
	r, err := core.New(experiments.SchedulerSpec(), paperex.SchedulerDecomp())
	if err != nil {
		b.Fatal(err)
	}
	for pid := int64(0); pid < 512; pid++ {
		if err := r.Insert(paperex.SchedulerTuple(pid%4, pid, pid%2, pid)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("point", func(b *testing.B) {
		pat := relation.NewTuple(relation.BindInt("ns", 1), relation.BindInt("pid", 129))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := r.Query(pat, []string{"cpu"})
			if err != nil || len(res) != 1 {
				b.Fatalf("res=%v err=%v", res, err)
			}
		}
	})
	b.Run("range", func(b *testing.B) {
		pat := relation.NewTuple(relation.BindInt("ns", 1))
		lo, hi := value.OfInt(101), value.OfInt(141)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := r.QueryRange(pat, "pid", &lo, &hi, []string{"cpu"})
			if err != nil || len(res) != 11 {
				b.Fatalf("res=%d err=%v", len(res), err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Range-query extension: ordered seek vs unordered filter on the same
// workload — the complexity gap the dstruct.Ranger fast path buys.

func BenchmarkRangeQuery(b *testing.B) {
	mk := func(kind dstruct.Kind) *core.Relation {
		d := decomp.MustNew([]decomp.Binding{
			decomp.Let("w", []string{"ns", "pid"}, []string{"state", "cpu"},
				decomp.U("state", "cpu")),
			decomp.Let("y", []string{"ns"}, []string{"pid", "state", "cpu"},
				decomp.M(kind, "w", "pid")),
			decomp.Let("root", nil, []string{"ns", "pid", "state", "cpu"},
				decomp.M(dstruct.HTableKind, "y", "ns")),
		}, "root")
		r, err := core.New(experiments.SchedulerSpec(), d)
		if err != nil {
			b.Fatal(err)
		}
		for pid := int64(0); pid < 2000; pid++ {
			if err := r.Insert(paperex.SchedulerTuple(1, pid, pid%2, pid)); err != nil {
				b.Fatal(err)
			}
		}
		return r
	}
	lo, hi := value.OfInt(990), value.OfInt(1009)
	pat := relation.NewTuple(relation.BindInt("ns", 1))
	for _, v := range []struct {
		name string
		kind dstruct.Kind
	}{
		{"avl-seek", dstruct.AVLKind},
		{"skiplist-seek", dstruct.SkipListKind},
		{"dlist-filter", dstruct.DListKind},
	} {
		b.Run(v.name, func(b *testing.B) {
			r := mk(v.kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := r.QueryRangeFunc(pat, "pid", &lo, &hi, []string{"cpu"}, func(relation.Tuple) bool {
					n++
					return true
				})
				if err != nil || n != 20 {
					b.Fatalf("n=%d err=%v", n, err)
				}
			}
		})
	}
}
